//! Systems and the deterministic run loop.
//!
//! A [`System`] is a communication graph with a device and input assigned to
//! every node (FLM §2). Devices address neighbors through *ports* whose
//! meaning is fixed by the base graph the device was written for; the
//! system's *wiring* maps each port to a physical neighbor. Installing
//! devices in a covering graph is just a different wiring — see
//! [`System::assign_lifted`].

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};

use crate::behavior::{DeviceMisbehavior, MisbehaviorKind, NodeBehavior, SystemBehavior};
use crate::device::{snapshot, Device, Input, NodeCtx, Payload};
use crate::Tick;

/// Errors from system assembly and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// A node was not assigned a device before `run`.
    Unassigned {
        /// The unassigned node.
        node: NodeId,
    },
    /// A wiring was not a bijection onto the node's physical neighbors.
    BadWiring {
        /// The node whose wiring is invalid.
        node: NodeId,
        /// Description of the defect.
        reason: String,
    },
    /// A device returned the wrong number of outputs from `step`.
    PortMismatch {
        /// The offending node.
        node: NodeId,
        /// Expected number of ports.
        expected: usize,
        /// Number of outputs actually returned.
        got: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Unassigned { node } => write!(f, "no device assigned to {node}"),
            SystemError::BadWiring { node, reason } => {
                write!(f, "invalid wiring at {node}: {reason}")
            }
            SystemError::PortMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "device at {node} returned {got} outputs for {expected} ports"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

/// Resource limits for a contained run ([`System::run_contained`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Largest payload a device may emit on one port in one tick; larger
    /// payloads are recorded as [`MisbehaviorKind::OversizedPayload`] and
    /// the node is quarantined.
    pub max_payload_bytes: usize,
    /// Hard cap on the number of ticks a single run may execute; a horizon
    /// above the cap is truncated (visible as `SystemBehavior::horizon`).
    pub max_ticks: u32,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            max_payload_bytes: 1 << 16,
            max_ticks: 1 << 14,
        }
    }
}

impl RunPolicy {
    /// Appends this policy to a wire writer (`max_payload_bytes` as `u64`,
    /// then `max_ticks`). Certificates record the policy their refuter ran
    /// under so verification replays with the same budgets.
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.u64(self.max_payload_bytes as u64).u32(self.max_ticks);
    }

    /// Reads a policy written by [`RunPolicy::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation or a payload
    /// limit that does not fit in `usize`.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        let max_payload_bytes = usize::try_from(r.u64()?).map_err(|_| crate::wire::DecodeError)?;
        let max_ticks = r.u32()?;
        Ok(RunPolicy {
            max_payload_bytes,
            max_ticks,
        })
    }
}

thread_local! {
    /// True while a contained run is executing a device step — tells the
    /// quiet panic hook to swallow the report (the panic is caught, recorded
    /// as misbehavior, and must not spam stderr).
    static CONTAINING: Cell<bool> = const { Cell::new(false) };
}

/// Installs, once per process, a panic hook that defers to the previous hook
/// except while a contained run is catching device panics.
fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CONTAINING.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with the same panic containment a contained run gives device
/// steps: a panic is caught and returned as its rendered message, and the
/// quiet hook keeps it off stderr.
///
/// The certificate audit path uses this around `Protocol::device`
/// construction — device constructors may assert graph-shape invariants
/// (completeness, minimum size) that a hostile or corrupted certificate's
/// base graph violates, and the auditor must turn that into a structured
/// error rather than abort.
///
/// # Errors
///
/// Returns the panic payload rendered as a string if `f` panicked.
pub fn contain_panics<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_panic_hook();
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            CONTAINING.with(|c| c.set(self.0));
        }
    }
    let previous = CONTAINING.with(|c| c.replace(true));
    let _restore = Restore(previous);
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Renders a caught panic payload as a message string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Reusable buffers for the dense message plane: the per-node edge tables,
/// inbox buffers, and quarantine flags [`System::run_inner`] builds for
/// every run. A sweep that executes thousands of small systems (the
/// adversarial matrix, the property suites, the refuter chains) can hold
/// one `RunScratch` and pass it to [`System::try_run_with_scratch`] /
/// [`System::run_contained_with_scratch`] to amortize those allocations;
/// the buffers are resized and overwritten per run, never carried between
/// runs as state, so scratch reuse cannot change a behavior.
///
/// Edge traces and snapshots are *outputs* (they move into the returned
/// [`SystemBehavior`]) and are always freshly allocated.
#[derive(Debug, Default)]
pub struct RunScratch {
    in_edges: Vec<Vec<usize>>,
    out_edges: Vec<Vec<usize>>,
    inboxes: Vec<Vec<Option<Payload>>>,
    quarantined: Vec<bool>,
}

impl RunScratch {
    /// Creates an empty scratch; buffers grow to fit the first run.
    pub fn new() -> Self {
        RunScratch::default()
    }
}

struct Slot {
    device: Box<dyn Device>,
    ctx: NodeCtx,
    /// `wiring[p]` = the physical neighbor connected to port `p`, when it
    /// differs from the identity; `None` means port `p` is wired to
    /// `ctx.ports[p]` itself, so identity assignments don't hold a second
    /// copy of the neighbor list.
    wiring: Option<Vec<NodeId>>,
}

impl Slot {
    fn wiring(&self) -> &[NodeId] {
        self.wiring.as_deref().unwrap_or(&self.ctx.ports)
    }
}

/// A communication graph with devices and inputs at its nodes.
pub struct System {
    graph: Arc<Graph>,
    slots: Vec<Option<Slot>>,
}

impl System {
    /// Creates a system over `graph` with no devices assigned yet.
    ///
    /// Accepts either a `Graph` or an `Arc<Graph>`; passing an `Arc` lets
    /// many systems (e.g. the parallel refuter's transplants) share one
    /// graph allocation.
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        let graph = graph.into();
        let n = graph.node_count();
        System {
            graph,
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Assigns `device` with `input` to node `v`, with the identity wiring:
    /// the device's ports are `v`'s sorted neighbors in this graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: NodeId, mut device: Box<dyn Device>, input: Input) {
        let ctx = NodeCtx {
            node: v,
            ports: self.graph.neighbors(v).collect(),
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring: None,
        });
    }

    /// Assigns a device *written for base node* `base_node` (with base
    /// neighbor list `base_ports`) to physical node `v`, wiring port `p` to
    /// physical neighbor `wiring[p]`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::BadWiring`] unless `wiring` is a bijection
    /// onto the physical neighbors of `v` with the same length as
    /// `base_ports`.
    pub fn assign_wired(
        &mut self,
        v: NodeId,
        mut device: Box<dyn Device>,
        input: Input,
        base_node: NodeId,
        base_ports: Vec<NodeId>,
        wiring: Vec<NodeId>,
    ) -> Result<(), SystemError> {
        if wiring.len() != base_ports.len() {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!("{} ports but {} wires", base_ports.len(), wiring.len()),
            });
        }
        let provided: BTreeSet<NodeId> = wiring.iter().copied().collect();
        if provided.len() != wiring.len() || !provided.iter().copied().eq(self.graph.neighbors(v)) {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!(
                    "wiring {provided:?} is not the neighbor set {:?}",
                    self.graph.neighbors(v).collect::<BTreeSet<_>>()
                ),
            });
        }
        let ctx = NodeCtx {
            node: base_node,
            ports: base_ports,
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring: Some(wiring),
        });
        Ok(())
    }

    /// Assigns to cover node `s` the device written for its base projection
    /// φ(s), wiring each port along the covering's edge lifts. This is the
    /// paper's "install the devices in the covering graph".
    ///
    /// # Errors
    ///
    /// Propagates [`SystemError::BadWiring`] (impossible for a validated
    /// covering, but surfaced rather than asserted).
    ///
    /// # Panics
    ///
    /// Panics if this system's graph is not the covering's cover graph.
    pub fn assign_lifted(
        &mut self,
        cov: &Covering,
        s: NodeId,
        device: Box<dyn Device>,
        input: Input,
    ) -> Result<(), SystemError> {
        assert_eq!(
            self.graph.as_ref(),
            cov.cover(),
            "system graph must be the covering's cover graph"
        );
        let base_node = cov.project(s);
        let base_ports: Vec<NodeId> = cov.base().neighbors(base_node).collect();
        let wiring: Vec<NodeId> = base_ports
            .iter()
            .map(|&t| cov.lift_neighbor(s, t))
            .collect();
        self.assign_wired(s, device, input, base_node, base_ports, wiring)
    }

    /// The input assigned to `v`, if a device has been assigned.
    pub fn input(&self, v: NodeId) -> Option<Input> {
        self.slots[v.index()].as_ref().map(|s| s.ctx.input)
    }

    /// Runs the system for `horizon` ticks and returns its behavior.
    ///
    /// Tick 0 steps every device with an empty inbox; at every later tick
    /// each device receives exactly the payloads sent to it one tick
    /// earlier (minimum delay δ = 1, the Bounded-Delay Locality axiom).
    ///
    /// # Panics
    ///
    /// Panics (with [`SystemError`] context) if any node is unassigned or a
    /// device violates the port discipline — both are programming errors in
    /// the caller or the device, not runtime conditions.
    pub fn run(mut self, horizon: u32) -> SystemBehavior {
        self.try_run(horizon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`System::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`].
    pub fn try_run(&mut self, horizon: u32) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon, None, &mut RunScratch::new())
    }

    /// [`System::try_run`] with caller-provided scratch buffers, so sweeps
    /// over many systems amortize the edge-table and inbox allocations.
    /// Byte-identical to [`System::try_run`] for the same system.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`].
    pub fn try_run_with_scratch(
        &mut self,
        horizon: u32,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon, None, scratch)
    }

    /// Runs the system with every device step *contained*: a device that
    /// panics, returns the wrong number of outputs, or emits a payload over
    /// `policy.max_payload_bytes` does not abort the run. Instead the
    /// incident is recorded as a [`DeviceMisbehavior`] in the returned
    /// behavior and the node is quarantined — silent on every outedge and
    /// frozen at a `"quarantined"` snapshot from the incident tick on.
    ///
    /// Quarantine keeps contained runs deterministic: the same devices and
    /// inputs misbehave at the same tick in every run, so behaviors remain
    /// functions of the system and scenario matching stays sound.
    ///
    /// The horizon is capped at `policy.max_ticks`; truncation is visible as
    /// the returned behavior's `horizon()`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] if a node has no device — an
    /// assembly error of the caller, not device misbehavior.
    pub fn run_contained(
        &mut self,
        horizon: u32,
        policy: &RunPolicy,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(
            horizon.min(policy.max_ticks),
            Some(policy),
            &mut RunScratch::new(),
        )
    }

    /// [`System::run_contained`] with caller-provided scratch buffers; see
    /// [`System::try_run_with_scratch`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] if a node has no device.
    pub fn run_contained_with_scratch(
        &mut self,
        horizon: u32,
        policy: &RunPolicy,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon.min(policy.max_ticks), Some(policy), scratch)
    }

    fn run_inner(
        &mut self,
        horizon: u32,
        policy: Option<&RunPolicy>,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        let n = self.graph.node_count();
        for v in self.graph.nodes() {
            if self.slots[v.index()].is_none() {
                return Err(SystemError::Unassigned { node: v });
            }
        }
        if policy.is_some() {
            install_quiet_panic_hook();
        }
        // Dense message plane: the tick loop never touches a map. Directed
        // edges get consecutive indices (lexicographic, the order of
        // `Graph::directed_edges`, so ports resolve by binary search over the
        // sorted list rather than through a per-run map), every port is
        // resolved to its receive and send edge index once up front, and each
        // node's inbox buffer is allocated once and overwritten in place
        // every tick. Delivering a payload is an `Arc` bump of last tick's
        // send, never a byte copy. The per-node tables, inbox buffers, and
        // quarantine flags live in `scratch` — resized and overwritten here,
        // so a reused scratch amortizes their allocations without carrying
        // any state between runs.
        //
        // Port resolution can only fail for a wiring that is not a bijection
        // onto the node's physical neighbors, which `assign`/`assign_wired`
        // already reject — the error path below keeps that invariant
        // structural (a `SystemError`, not an `expect`) for slots assembled
        // some other way.
        let edge_list = self.graph.directed_edges();
        scratch.in_edges.resize_with(n, Vec::new);
        scratch.out_edges.resize_with(n, Vec::new);
        for v in self.graph.nodes() {
            let slot = self.slots[v.index()]
                .as_ref()
                .expect("run_inner is only reached after every node is assigned");
            let wiring = slot.wiring();
            let ins = &mut scratch.in_edges[v.index()];
            let outs = &mut scratch.out_edges[v.index()];
            ins.clear();
            outs.clear();
            for &w in wiring {
                let bad_wire = |_| SystemError::BadWiring {
                    node: v,
                    reason: format!("port wired to {w}, which is not a neighbor of {v}"),
                };
                ins.push(edge_list.binary_search(&(w, v)).map_err(bad_wire)?);
                outs.push(edge_list.binary_search(&(v, w)).map_err(bad_wire)?);
            }
        }
        let in_edges = &scratch.in_edges;
        let out_edges = &scratch.out_edges;
        let mut traces: Vec<Vec<Option<Payload>>> = edge_list
            .iter()
            .map(|_| Vec::with_capacity(horizon as usize))
            .collect();
        let mut snaps: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(horizon as usize); n];
        let mut misbehavior: Vec<DeviceMisbehavior> = Vec::new();
        scratch.quarantined.clear();
        scratch.quarantined.resize(n, false);
        let quarantined = &mut scratch.quarantined;
        scratch.inboxes.resize_with(n, Vec::new);
        for (inbox, ins) in scratch.inboxes.iter_mut().zip(in_edges) {
            inbox.clear();
            inbox.resize(ins.len(), None);
        }
        let inboxes = &mut scratch.inboxes;

        for t in 0..horizon {
            let tick = Tick(t);
            // Refill the reused inboxes from last tick's edge traces (tick 0
            // keeps the initial all-`None` buffers).
            if t > 0 {
                for (inbox, ins) in inboxes.iter_mut().zip(in_edges.iter()) {
                    for (cell, &e) in inbox.iter_mut().zip(ins) {
                        *cell = traces[e][t as usize - 1].clone();
                    }
                }
            }
            // Step devices and record sends + snapshots.
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()]
                    .as_mut()
                    .expect("run_inner is only reached after every node is assigned");
                let ports = out_edges[v.index()].len();
                let mut incident: Option<MisbehaviorKind> = None;
                let out: Vec<Option<Payload>> = if quarantined[v.index()] {
                    vec![None; ports]
                } else {
                    let stepped = match policy {
                        None => Ok(slot.device.step(tick, &inboxes[v.index()])),
                        Some(_) => {
                            let device = &mut slot.device;
                            let inbox = &inboxes[v.index()];
                            CONTAINING.with(|c| c.set(true));
                            let result =
                                panic::catch_unwind(AssertUnwindSafe(|| device.step(tick, inbox)));
                            CONTAINING.with(|c| c.set(false));
                            result.map_err(|p| MisbehaviorKind::Panic(panic_message(p)))
                        }
                    };
                    match stepped {
                        Ok(out) if out.len() != ports => {
                            let kind = MisbehaviorKind::PortMismatch {
                                expected: ports,
                                got: out.len(),
                            };
                            if policy.is_none() {
                                return Err(SystemError::PortMismatch {
                                    node: v,
                                    expected: ports,
                                    got: out.len(),
                                });
                            }
                            incident = Some(kind);
                            vec![None; ports]
                        }
                        Ok(out) => {
                            let oversized = policy.and_then(|p| {
                                out.iter().enumerate().find_map(|(port, m)| {
                                    m.as_ref()
                                        .filter(|m| m.len() > p.max_payload_bytes)
                                        .map(|m| MisbehaviorKind::OversizedPayload {
                                            port,
                                            len: m.len(),
                                            limit: p.max_payload_bytes,
                                        })
                                })
                            });
                            match oversized {
                                Some(kind) => {
                                    incident = Some(kind);
                                    vec![None; ports]
                                }
                                None => out,
                            }
                        }
                        Err(kind) => {
                            incident = Some(kind);
                            vec![None; ports]
                        }
                    }
                };
                if let Some(kind) = incident {
                    misbehavior.push(DeviceMisbehavior {
                        node: v,
                        tick,
                        kind,
                    });
                    quarantined[v.index()] = true;
                }
                // Sends land directly in the dense trace table; `out_edges`
                // was fully resolved before the loop, so every port has an
                // edge by construction.
                for (p, payload) in out.into_iter().enumerate() {
                    traces[out_edges[v.index()][p]].push(payload);
                }
                // A quarantined device is never touched again — its state may
                // be poisoned mid-panic, so the marker stands in for it.
                snaps[v.index()].push(if quarantined[v.index()] {
                    snapshot::undecided(b"quarantined")
                } else {
                    slot.device.snapshot()
                });
            }
        }

        let nodes = self
            .graph
            .nodes()
            .map(|v| {
                let slot = self.slots[v.index()]
                    .as_ref()
                    .expect("run_inner is only reached after every node is assigned");
                NodeBehavior {
                    device_name: slot.device.name().to_string(),
                    input: slot.ctx.input,
                    snaps: std::mem::take(&mut snaps[v.index()]),
                }
            })
            .collect();
        // The public edge map is assembled once, after the run; `zip` pairs
        // each directed edge with its dense trace because both follow the
        // `directed_edges` order.
        let edges: BTreeMap<(NodeId, NodeId), Vec<Option<Payload>>> =
            edge_list.into_iter().zip(traces).collect();
        Ok(SystemBehavior::new(
            Arc::clone(&self.graph),
            nodes,
            edges,
            horizon,
            misbehavior,
        ))
    }

    /// Runs the system with the pre-zero-copy loop: a `BTreeMap`-keyed edge
    /// plane, fresh inbox allocations every tick, and a deep byte copy for
    /// every delivered payload.
    ///
    /// No production path uses this — it is kept as the differential
    /// reference for the dense zero-copy plane: tests assert
    /// [`System::try_run`] produces byte-identical behaviors, and
    /// `crates/bench` measures the dense loop's speedup against it.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`]
    /// exactly like [`System::try_run`]; containment is not replicated.
    pub fn run_reference(&mut self, horizon: u32) -> Result<SystemBehavior, SystemError> {
        let n = self.graph.node_count();
        for v in self.graph.nodes() {
            if self.slots[v.index()].is_none() {
                return Err(SystemError::Unassigned { node: v });
            }
        }
        let mut edges: BTreeMap<(NodeId, NodeId), Vec<Option<Payload>>> = self
            .graph
            .directed_edges()
            .into_iter()
            .map(|e| (e, Vec::with_capacity(horizon as usize)))
            .collect();
        let mut snaps: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(horizon as usize); n];

        for t in 0..horizon {
            let tick = Tick(t);
            let mut inboxes: Vec<Vec<Option<Payload>>> = Vec::with_capacity(n);
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()]
                    .as_ref()
                    .expect("run_reference is only reached after every node is assigned");
                let inbox = slot
                    .wiring()
                    .iter()
                    .map(|&w| {
                        if t == 0 {
                            None
                        } else {
                            // Deliberate deep copy — the cost the zero-copy
                            // plane removed.
                            edges[&(w, v)][t as usize - 1]
                                .as_ref()
                                .map(|m| Payload::from(m.to_vec()))
                        }
                    })
                    .collect();
                inboxes.push(inbox);
            }
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()]
                    .as_mut()
                    .expect("run_reference is only reached after every node is assigned");
                let ports = slot.wiring().len();
                let out = slot.device.step(tick, &inboxes[v.index()]);
                if out.len() != ports {
                    return Err(SystemError::PortMismatch {
                        node: v,
                        expected: ports,
                        got: out.len(),
                    });
                }
                for (p, payload) in out.into_iter().enumerate() {
                    let w = slot.wiring()[p];
                    edges
                        .get_mut(&(v, w))
                        .expect("edge traces were pre-created for every wiring entry")
                        .push(payload);
                }
                snaps[v.index()].push(slot.device.snapshot());
            }
        }

        let nodes = self
            .graph
            .nodes()
            .map(|v| {
                let slot = self.slots[v.index()]
                    .as_ref()
                    .expect("run_reference is only reached after every node is assigned");
                NodeBehavior {
                    device_name: slot.device.name().to_string(),
                    input: slot.ctx.input,
                    snaps: std::mem::take(&mut snaps[v.index()]),
                }
            })
            .collect();
        Ok(SystemBehavior::new(
            Arc::clone(&self.graph),
            nodes,
            edges,
            horizon,
            Vec::new(),
        ))
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System(n={}, assigned={})",
            self.graph.node_count(),
            self.slots.iter().filter(|s| s.is_some()).count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{snapshot, Payload};
    use flm_graph::builders;

    /// Sends its node id on every port every tick; snapshot = count of
    /// messages received so far.
    struct Counter {
        me: u32,
        received: u32,
    }

    impl Device for Counter {
        fn name(&self) -> &'static str {
            "Counter"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.me = ctx.node.0;
        }
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            self.received += inbox.iter().flatten().count() as u32;
            inbox
                .iter()
                .map(|_| Some(vec![self.me as u8].into()))
                .collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(&self.received.to_be_bytes())
        }
    }

    fn counter() -> Box<dyn Device> {
        Box::new(Counter { me: 0, received: 0 })
    }

    #[test]
    fn messages_take_one_tick() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        sys.assign(NodeId(1), counter(), Input::None);
        let b = sys.run(3);
        // Nothing received at tick 0; one message per tick thereafter.
        assert_eq!(
            b.node(NodeId(0)).snaps[0],
            snapshot::undecided(&0u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[1],
            snapshot::undecided(&1u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[2],
            snapshot::undecided(&2u32.to_be_bytes())
        );
        // Edge traces record the sends.
        assert_eq!(b.edge(NodeId(0), NodeId(1)).len(), 3);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], Some(vec![0].into()));
    }

    #[test]
    fn unassigned_node_is_an_error() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        assert_eq!(
            sys.try_run(1).unwrap_err(),
            SystemError::Unassigned { node: NodeId(1) }
        );
    }

    #[test]
    fn bad_wiring_is_rejected() {
        let g = builders::triangle();
        let mut sys = System::new(g);
        let err = sys
            .assign_wired(
                NodeId(0),
                counter(),
                Input::None,
                NodeId(0),
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(1), NodeId(1)],
            )
            .unwrap_err();
        assert!(matches!(err, SystemError::BadWiring { .. }));
    }

    #[test]
    fn identical_systems_have_identical_behaviors() {
        // Determinism: the model's "a system has exactly one behavior".
        let run = || {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(v, counter(), Input::Bool(v.0 == 0));
            }
            sys.run(5)
        };
        let (a, b) = (run(), run());
        for v in a.graph().nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
        assert_eq!(a.edges(), b.edges());
    }

    /// Misbehaves on command: panics, returns the wrong port count, or
    /// emits an oversized payload at `at`.
    struct Hostile {
        at: Tick,
        mode: u8,
    }

    impl Device for Hostile {
        fn name(&self) -> &'static str {
            "Hostile"
        }
        fn init(&mut self, _ctx: &NodeCtx) {}
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            if t >= self.at {
                match self.mode {
                    0 => panic!("hostile device detonated"),
                    1 => return vec![None; inbox.len() + 3],
                    _ => return vec![Some(vec![0xAB; 64].into()); inbox.len()],
                }
            }
            inbox.iter().map(|_| Some(vec![7].into())).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(b"hostile")
        }
    }

    fn contained_run(mode: u8) -> SystemBehavior {
        let g = builders::triangle();
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(Hostile { at: Tick(1), mode }),
            Input::None,
        );
        sys.assign(NodeId(1), counter(), Input::None);
        sys.assign(NodeId(2), counter(), Input::None);
        let policy = RunPolicy {
            max_payload_bytes: 16,
            ..RunPolicy::default()
        };
        sys.run_contained(4, &policy).unwrap()
    }

    #[test]
    fn contained_run_records_panics_and_quarantines() {
        let b = contained_run(0);
        assert_eq!(b.misbehavior().len(), 1);
        let m = &b.misbehavior()[0];
        assert_eq!(m.node, NodeId(0));
        assert_eq!(m.tick, Tick(1));
        assert!(
            matches!(&m.kind, crate::behavior::MisbehaviorKind::Panic(msg) if msg.contains("detonated"))
        );
        // Quarantined: silent from the incident on, marker snapshot.
        assert!(b.edge(NodeId(0), NodeId(1))[0].is_some());
        assert!(b.edge(NodeId(0), NodeId(1))[1..]
            .iter()
            .all(Option::is_none));
        assert_eq!(
            b.node(NodeId(0)).snaps[1],
            snapshot::undecided(b"quarantined")
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[3],
            snapshot::undecided(b"quarantined")
        );
        // Honest nodes keep running.
        assert!(b.edge(NodeId(1), NodeId(2))[3].is_some());
    }

    #[test]
    fn contained_run_records_port_mismatch() {
        let b = contained_run(1);
        assert!(matches!(
            b.misbehavior()[0].kind,
            crate::behavior::MisbehaviorKind::PortMismatch {
                expected: 2,
                got: 5
            }
        ));
        assert_eq!(
            b.misbehaving_nodes().into_iter().collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn contained_run_records_oversized_payload() {
        let b = contained_run(2);
        assert!(matches!(
            b.misbehavior()[0].kind,
            crate::behavior::MisbehaviorKind::OversizedPayload {
                port: 0,
                len: 64,
                limit: 16
            }
        ));
        // The oversized payload never reaches the wire.
        assert!(b.edge(NodeId(0), NodeId(1))[1..]
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn contained_runs_are_deterministic() {
        let (a, b) = (contained_run(0), contained_run(0));
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.misbehavior(), b.misbehavior());
        for v in a.graph().nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
    }

    #[test]
    fn contained_run_caps_ticks_at_the_policy_budget() {
        let mut sys = System::new(builders::path(2));
        sys.assign(NodeId(0), counter(), Input::None);
        sys.assign(NodeId(1), counter(), Input::None);
        let policy = RunPolicy {
            max_ticks: 3,
            ..RunPolicy::default()
        };
        let b = sys.run_contained(1000, &policy).unwrap();
        assert_eq!(b.horizon(), 3);
    }

    #[test]
    fn well_behaved_contained_run_matches_strict_run() {
        let build = || {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(v, counter(), Input::Bool(v.0 == 0));
            }
            sys
        };
        let strict = build().try_run(5).unwrap();
        let contained = build().run_contained(5, &RunPolicy::default()).unwrap();
        assert!(contained.misbehavior().is_empty());
        assert_eq!(strict.edges(), contained.edges());
        for v in strict.graph().nodes() {
            assert_eq!(strict.node(v), contained.node(v));
        }
    }

    #[test]
    fn dense_plane_matches_reference_loop() {
        // The zero-copy dense plane must be byte-identical to the seed's
        // copy-per-delivery loop on every observable.
        use crate::devices::TableDevice;
        for (seed, g) in [
            (1u64, builders::triangle()),
            (2, builders::complete(5)),
            (3, builders::cycle(9)),
            (4, builders::path(4)),
        ] {
            let build = || {
                let mut sys = System::new(g.clone());
                for v in g.nodes() {
                    sys.assign(
                        v,
                        Box::new(TableDevice::new(seed ^ u64::from(v.0), 6)),
                        Input::Bool(v.0.is_multiple_of(2)),
                    );
                }
                sys
            };
            let dense = build().try_run(8).unwrap();
            let reference = build().run_reference(8).unwrap();
            assert_eq!(dense.edges(), reference.edges());
            for v in g.nodes() {
                assert_eq!(dense.node(v), reference.node(v));
            }
        }
    }

    #[test]
    fn lifted_assignment_runs_on_cover() {
        use flm_graph::covering::Covering;
        use std::collections::BTreeSet;
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        let cov = Covering::double_cover_crossing(&tri, &a, &c).unwrap();
        let mut sys = System::new(cov.cover().clone());
        for s in cov.cover().nodes() {
            sys.assign_lifted(&cov, s, counter(), Input::None).unwrap();
        }
        let b = sys.run(4);
        // Every node eventually counts messages from both ports.
        for s in b.graph().nodes() {
            assert_eq!(b.node(s).snaps[3], snapshot::undecided(&6u32.to_be_bytes()));
        }
    }
}
