//! Systems and the deterministic run loop.
//!
//! A [`System`] is a communication graph with a device and input assigned to
//! every node (FLM §2). Devices address neighbors through *ports* whose
//! meaning is fixed by the base graph the device was written for; the
//! system's *wiring* maps each port to a physical neighbor. Installing
//! devices in a covering graph is just a different wiring — see
//! [`System::assign_lifted`].

use std::collections::BTreeMap;
use std::fmt;

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};

use crate::behavior::{NodeBehavior, SystemBehavior};
use crate::device::{Device, Input, NodeCtx};
use crate::Tick;

/// Errors from system assembly and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// A node was not assigned a device before `run`.
    Unassigned {
        /// The unassigned node.
        node: NodeId,
    },
    /// A wiring was not a bijection onto the node's physical neighbors.
    BadWiring {
        /// The node whose wiring is invalid.
        node: NodeId,
        /// Description of the defect.
        reason: String,
    },
    /// A device returned the wrong number of outputs from `step`.
    PortMismatch {
        /// The offending node.
        node: NodeId,
        /// Expected number of ports.
        expected: usize,
        /// Number of outputs actually returned.
        got: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Unassigned { node } => write!(f, "no device assigned to {node}"),
            SystemError::BadWiring { node, reason } => {
                write!(f, "invalid wiring at {node}: {reason}")
            }
            SystemError::PortMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "device at {node} returned {got} outputs for {expected} ports"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

struct Slot {
    device: Box<dyn Device>,
    ctx: NodeCtx,
    /// `wiring[p]` = the physical neighbor connected to port `p`.
    wiring: Vec<NodeId>,
}

/// A communication graph with devices and inputs at its nodes.
pub struct System {
    graph: Graph,
    slots: Vec<Option<Slot>>,
}

impl System {
    /// Creates a system over `graph` with no devices assigned yet.
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        System {
            graph,
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Assigns `device` with `input` to node `v`, with the identity wiring:
    /// the device's ports are `v`'s sorted neighbors in this graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: NodeId, mut device: Box<dyn Device>, input: Input) {
        let neighbors: Vec<NodeId> = self.graph.neighbors(v).collect();
        let ctx = NodeCtx {
            node: v,
            ports: neighbors.clone(),
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring: neighbors,
        });
    }

    /// Assigns a device *written for base node* `base_node` (with base
    /// neighbor list `base_ports`) to physical node `v`, wiring port `p` to
    /// physical neighbor `wiring[p]`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::BadWiring`] unless `wiring` is a bijection
    /// onto the physical neighbors of `v` with the same length as
    /// `base_ports`.
    pub fn assign_wired(
        &mut self,
        v: NodeId,
        mut device: Box<dyn Device>,
        input: Input,
        base_node: NodeId,
        base_ports: Vec<NodeId>,
        wiring: Vec<NodeId>,
    ) -> Result<(), SystemError> {
        if wiring.len() != base_ports.len() {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!("{} ports but {} wires", base_ports.len(), wiring.len()),
            });
        }
        let mut sorted = wiring.clone();
        sorted.sort();
        sorted.dedup();
        let actual: Vec<NodeId> = self.graph.neighbors(v).collect();
        if sorted != actual {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!("wiring {sorted:?} is not the neighbor set {actual:?}"),
            });
        }
        let ctx = NodeCtx {
            node: base_node,
            ports: base_ports,
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring,
        });
        Ok(())
    }

    /// Assigns to cover node `s` the device written for its base projection
    /// φ(s), wiring each port along the covering's edge lifts. This is the
    /// paper's "install the devices in the covering graph".
    ///
    /// # Errors
    ///
    /// Propagates [`SystemError::BadWiring`] (impossible for a validated
    /// covering, but surfaced rather than asserted).
    ///
    /// # Panics
    ///
    /// Panics if this system's graph is not the covering's cover graph.
    pub fn assign_lifted(
        &mut self,
        cov: &Covering,
        s: NodeId,
        device: Box<dyn Device>,
        input: Input,
    ) -> Result<(), SystemError> {
        assert_eq!(
            &self.graph,
            cov.cover(),
            "system graph must be the covering's cover graph"
        );
        let base_node = cov.project(s);
        let base_ports: Vec<NodeId> = cov.base().neighbors(base_node).collect();
        let wiring: Vec<NodeId> = base_ports
            .iter()
            .map(|&t| cov.lift_neighbor(s, t))
            .collect();
        self.assign_wired(s, device, input, base_node, base_ports, wiring)
    }

    /// The input assigned to `v`, if a device has been assigned.
    pub fn input(&self, v: NodeId) -> Option<Input> {
        self.slots[v.index()].as_ref().map(|s| s.ctx.input)
    }

    /// Runs the system for `horizon` ticks and returns its behavior.
    ///
    /// Tick 0 steps every device with an empty inbox; at every later tick
    /// each device receives exactly the payloads sent to it one tick
    /// earlier (minimum delay δ = 1, the Bounded-Delay Locality axiom).
    ///
    /// # Panics
    ///
    /// Panics (with [`SystemError`] context) if any node is unassigned or a
    /// device violates the port discipline — both are programming errors in
    /// the caller or the device, not runtime conditions.
    pub fn run(mut self, horizon: u32) -> SystemBehavior {
        self.try_run(horizon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`System::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`].
    pub fn try_run(&mut self, horizon: u32) -> Result<SystemBehavior, SystemError> {
        let n = self.graph.node_count();
        for v in self.graph.nodes() {
            if self.slots[v.index()].is_none() {
                return Err(SystemError::Unassigned { node: v });
            }
        }
        let mut edges: BTreeMap<(NodeId, NodeId), Vec<Option<Vec<u8>>>> = self
            .graph
            .directed_edges()
            .into_iter()
            .map(|e| (e, Vec::with_capacity(horizon as usize)))
            .collect();
        let mut snaps: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(horizon as usize); n];

        for t in 0..horizon {
            let tick = Tick(t);
            // Gather this tick's inboxes from last tick's edge traces.
            let mut inboxes: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(n);
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()].as_ref().expect("checked above");
                let inbox = slot
                    .wiring
                    .iter()
                    .map(|&w| {
                        if t == 0 {
                            None
                        } else {
                            edges[&(w, v)][t as usize - 1].clone()
                        }
                    })
                    .collect();
                inboxes.push(inbox);
            }
            // Step devices and record sends + snapshots.
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()].as_mut().expect("checked above");
                let out = slot.device.step(tick, &inboxes[v.index()]);
                if out.len() != slot.wiring.len() {
                    return Err(SystemError::PortMismatch {
                        node: v,
                        expected: slot.wiring.len(),
                        got: out.len(),
                    });
                }
                for (p, payload) in out.into_iter().enumerate() {
                    let w = slot.wiring[p];
                    edges
                        .get_mut(&(v, w))
                        .expect("wiring validated")
                        .push(payload);
                }
                snaps[v.index()].push(slot.device.snapshot());
            }
        }

        let nodes = self
            .graph
            .nodes()
            .map(|v| {
                let slot = self.slots[v.index()].as_ref().expect("checked above");
                NodeBehavior {
                    device_name: slot.device.name().to_string(),
                    input: slot.ctx.input,
                    snaps: std::mem::take(&mut snaps[v.index()]),
                }
            })
            .collect();
        Ok(SystemBehavior::new(
            self.graph.clone(),
            nodes,
            edges,
            horizon,
        ))
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System(n={}, assigned={})",
            self.graph.node_count(),
            self.slots.iter().filter(|s| s.is_some()).count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{snapshot, Payload};
    use flm_graph::builders;

    /// Sends its node id on every port every tick; snapshot = count of
    /// messages received so far.
    struct Counter {
        me: u32,
        received: u32,
    }

    impl Device for Counter {
        fn name(&self) -> &'static str {
            "Counter"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.me = ctx.node.0;
        }
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            self.received += inbox.iter().flatten().count() as u32;
            inbox.iter().map(|_| Some(vec![self.me as u8])).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(&self.received.to_be_bytes())
        }
    }

    fn counter() -> Box<dyn Device> {
        Box::new(Counter { me: 0, received: 0 })
    }

    #[test]
    fn messages_take_one_tick() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        sys.assign(NodeId(1), counter(), Input::None);
        let b = sys.run(3);
        // Nothing received at tick 0; one message per tick thereafter.
        assert_eq!(
            b.node(NodeId(0)).snaps[0],
            snapshot::undecided(&0u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[1],
            snapshot::undecided(&1u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[2],
            snapshot::undecided(&2u32.to_be_bytes())
        );
        // Edge traces record the sends.
        assert_eq!(b.edge(NodeId(0), NodeId(1)).len(), 3);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], Some(vec![0]));
    }

    #[test]
    fn unassigned_node_is_an_error() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        assert_eq!(
            sys.try_run(1).unwrap_err(),
            SystemError::Unassigned { node: NodeId(1) }
        );
    }

    #[test]
    fn bad_wiring_is_rejected() {
        let g = builders::triangle();
        let mut sys = System::new(g);
        let err = sys
            .assign_wired(
                NodeId(0),
                counter(),
                Input::None,
                NodeId(0),
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(1), NodeId(1)],
            )
            .unwrap_err();
        assert!(matches!(err, SystemError::BadWiring { .. }));
    }

    #[test]
    fn identical_systems_have_identical_behaviors() {
        // Determinism: the model's "a system has exactly one behavior".
        let run = || {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(v, counter(), Input::Bool(v.0 == 0));
            }
            sys.run(5)
        };
        let (a, b) = (run(), run());
        for v in a.graph().nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn lifted_assignment_runs_on_cover() {
        use flm_graph::covering::Covering;
        use std::collections::BTreeSet;
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        let cov = Covering::double_cover_crossing(&tri, &a, &c).unwrap();
        let mut sys = System::new(cov.cover().clone());
        for s in cov.cover().nodes() {
            sys.assign_lifted(&cov, s, counter(), Input::None).unwrap();
        }
        let b = sys.run(4);
        // Every node eventually counts messages from both ports.
        for s in b.graph().nodes() {
            assert_eq!(b.node(s).snaps[3], snapshot::undecided(&6u32.to_be_bytes()));
        }
    }
}
