//! Systems and the deterministic run loop.
//!
//! A [`System`] is a communication graph with a device and input assigned to
//! every node (FLM §2). Devices address neighbors through *ports* whose
//! meaning is fixed by the base graph the device was written for; the
//! system's *wiring* maps each port to a physical neighbor. Installing
//! devices in a covering graph is just a different wiring — see
//! [`System::assign_lifted`].

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};

use crate::behavior::{NodeBehavior, SystemBehavior};
use crate::device::{Device, Input, NodeCtx, Payload};
use crate::Tick;

/// Errors from system assembly and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// A node was not assigned a device before `run`.
    Unassigned {
        /// The unassigned node.
        node: NodeId,
    },
    /// A wiring was not a bijection onto the node's physical neighbors.
    BadWiring {
        /// The node whose wiring is invalid.
        node: NodeId,
        /// Description of the defect.
        reason: String,
    },
    /// A device returned the wrong number of outputs from `step`.
    PortMismatch {
        /// The offending node.
        node: NodeId,
        /// Expected number of ports.
        expected: usize,
        /// Number of outputs actually returned.
        got: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Unassigned { node } => write!(f, "no device assigned to {node}"),
            SystemError::BadWiring { node, reason } => {
                write!(f, "invalid wiring at {node}: {reason}")
            }
            SystemError::PortMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "device at {node} returned {got} outputs for {expected} ports"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

/// Resource limits for a contained run ([`System::run_contained`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Largest payload a device may emit on one port in one tick; larger
    /// payloads are recorded as [`MisbehaviorKind::OversizedPayload`] and
    /// the node is quarantined.
    pub max_payload_bytes: usize,
    /// Hard cap on the number of ticks a single run may execute; a horizon
    /// above the cap is truncated (visible as `SystemBehavior::horizon`).
    pub max_ticks: u32,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            max_payload_bytes: 1 << 16,
            max_ticks: 1 << 14,
        }
    }
}

impl RunPolicy {
    /// Appends this policy to a wire writer (`max_payload_bytes` as `u64`,
    /// then `max_ticks`). Certificates record the policy their refuter ran
    /// under so verification replays with the same budgets.
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.u64(self.max_payload_bytes as u64).u32(self.max_ticks);
    }

    /// Reads a policy written by [`RunPolicy::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation or a payload
    /// limit that does not fit in `usize`.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        let max_payload_bytes = usize::try_from(r.u64()?).map_err(|_| crate::wire::DecodeError)?;
        let max_ticks = r.u32()?;
        Ok(RunPolicy {
            max_payload_bytes,
            max_ticks,
        })
    }
}

thread_local! {
    /// True while a contained run is executing a device step — tells the
    /// quiet panic hook to swallow the report (the panic is caught, recorded
    /// as misbehavior, and must not spam stderr).
    pub(crate) static CONTAINING: Cell<bool> = const { Cell::new(false) };
}

/// Installs, once per process, a panic hook that defers to the previous hook
/// except while a contained run is catching device panics.
pub(crate) fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CONTAINING.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with the same panic containment a contained run gives device
/// steps: a panic is caught and returned as its rendered message, and the
/// quiet hook keeps it off stderr.
///
/// The certificate audit path uses this around `Protocol::device`
/// construction — device constructors may assert graph-shape invariants
/// (completeness, minimum size) that a hostile or corrupted certificate's
/// base graph violates, and the auditor must turn that into a structured
/// error rather than abort.
///
/// # Errors
///
/// Returns the panic payload rendered as a string if `f` panicked.
pub fn contain_panics<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_panic_hook();
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            CONTAINING.with(|c| c.set(self.0));
        }
    }
    let previous = CONTAINING.with(|c| c.replace(true));
    let _restore = Restore(previous);
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Renders a caught panic payload as a message string.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Reusable buffers for the dense message plane: the flat port-offset /
/// edge-index tables, the flat inbox buffer, and the quarantine flags the
/// SoA kernel (`crate::kernel`) builds for every run. A sweep that
/// executes thousands of small systems (the adversarial matrix, the
/// property suites, the refuter chains) can hold one `RunScratch` and pass
/// it to [`System::try_run_with_scratch`] /
/// [`System::run_contained_with_scratch`] to amortize those allocations;
/// the buffers are resized and overwritten per run, never carried between
/// runs as state, so scratch reuse cannot change a behavior.
///
/// Edge traces and snapshots are *outputs* (they move into the returned
/// [`SystemBehavior`]) and are always freshly allocated.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// `n + 1` prefix sums: node `v`'s ports occupy the flat range
    /// `port_off[v]..port_off[v + 1]` in the tables below.
    pub(crate) port_off: Vec<u32>,
    /// Receive edge index (lex position in `directed_edges`) per flat port.
    pub(crate) in_edges: Vec<u32>,
    /// Send edge index per flat port.
    pub(crate) out_edges: Vec<u32>,
    /// One flat inbox cell per port, overwritten every tick.
    pub(crate) inbox: Vec<Option<Payload>>,
    pub(crate) quarantined: Vec<bool>,
}

impl RunScratch {
    /// Creates an empty scratch; buffers grow to fit the first run.
    pub fn new() -> Self {
        RunScratch::default()
    }
}

pub(crate) struct Slot {
    pub(crate) device: Box<dyn Device>,
    pub(crate) ctx: NodeCtx,
    /// `wiring[p]` = the physical neighbor connected to port `p`, when it
    /// differs from the identity; `None` means port `p` is wired to
    /// `ctx.ports[p]` itself, so identity assignments don't hold a second
    /// copy of the neighbor list.
    wiring: Option<Vec<NodeId>>,
}

impl Slot {
    pub(crate) fn wiring(&self) -> &[NodeId] {
        self.wiring.as_deref().unwrap_or(&self.ctx.ports)
    }
}

/// A communication graph with devices and inputs at its nodes.
pub struct System {
    graph: Arc<Graph>,
    slots: Vec<Option<Slot>>,
}

impl System {
    /// Creates a system over `graph` with no devices assigned yet.
    ///
    /// Accepts either a `Graph` or an `Arc<Graph>`; passing an `Arc` lets
    /// many systems (e.g. the parallel refuter's transplants) share one
    /// graph allocation.
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        let graph = graph.into();
        let n = graph.node_count();
        System {
            graph,
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Assigns `device` with `input` to node `v`, with the identity wiring:
    /// the device's ports are `v`'s sorted neighbors in this graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: NodeId, mut device: Box<dyn Device>, input: Input) {
        let ctx = NodeCtx {
            node: v,
            ports: self.graph.neighbors(v).collect(),
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring: None,
        });
    }

    /// Assigns a device *written for base node* `base_node` (with base
    /// neighbor list `base_ports`) to physical node `v`, wiring port `p` to
    /// physical neighbor `wiring[p]`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::BadWiring`] unless `wiring` is a bijection
    /// onto the physical neighbors of `v` with the same length as
    /// `base_ports`.
    pub fn assign_wired(
        &mut self,
        v: NodeId,
        mut device: Box<dyn Device>,
        input: Input,
        base_node: NodeId,
        base_ports: Vec<NodeId>,
        wiring: Vec<NodeId>,
    ) -> Result<(), SystemError> {
        if wiring.len() != base_ports.len() {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!("{} ports but {} wires", base_ports.len(), wiring.len()),
            });
        }
        let provided: BTreeSet<NodeId> = wiring.iter().copied().collect();
        if provided.len() != wiring.len() || !provided.iter().copied().eq(self.graph.neighbors(v)) {
            return Err(SystemError::BadWiring {
                node: v,
                reason: format!(
                    "wiring {provided:?} is not the neighbor set {:?}",
                    self.graph.neighbors(v).collect::<BTreeSet<_>>()
                ),
            });
        }
        let ctx = NodeCtx {
            node: base_node,
            ports: base_ports,
            input,
        };
        device.init(&ctx);
        self.slots[v.index()] = Some(Slot {
            device,
            ctx,
            wiring: Some(wiring),
        });
        Ok(())
    }

    /// Assigns to cover node `s` the device written for its base projection
    /// φ(s), wiring each port along the covering's edge lifts. This is the
    /// paper's "install the devices in the covering graph".
    ///
    /// # Errors
    ///
    /// Propagates [`SystemError::BadWiring`] (impossible for a validated
    /// covering, but surfaced rather than asserted).
    ///
    /// # Panics
    ///
    /// Panics if this system's graph is not the covering's cover graph.
    pub fn assign_lifted(
        &mut self,
        cov: &Covering,
        s: NodeId,
        device: Box<dyn Device>,
        input: Input,
    ) -> Result<(), SystemError> {
        assert_eq!(
            self.graph.as_ref(),
            cov.cover(),
            "system graph must be the covering's cover graph"
        );
        let base_node = cov.project(s);
        let base_ports: Vec<NodeId> = cov.base().neighbors(base_node).collect();
        let wiring: Vec<NodeId> = base_ports
            .iter()
            .map(|&t| cov.lift_neighbor(s, t))
            .collect();
        self.assign_wired(s, device, input, base_node, base_ports, wiring)
    }

    /// The input assigned to `v`, if a device has been assigned.
    pub fn input(&self, v: NodeId) -> Option<Input> {
        self.slots[v.index()].as_ref().map(|s| s.ctx.input)
    }

    /// Runs the system for `horizon` ticks and returns its behavior.
    ///
    /// Tick 0 steps every device with an empty inbox; at every later tick
    /// each device receives exactly the payloads sent to it one tick
    /// earlier (minimum delay δ = 1, the Bounded-Delay Locality axiom).
    ///
    /// # Panics
    ///
    /// Panics (with [`SystemError`] context) if any node is unassigned or a
    /// device violates the port discipline — both are programming errors in
    /// the caller or the device, not runtime conditions.
    pub fn run(mut self, horizon: u32) -> SystemBehavior {
        self.try_run(horizon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`System::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`].
    pub fn try_run(&mut self, horizon: u32) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon, None, &mut RunScratch::new())
    }

    /// [`System::try_run`] with caller-provided scratch buffers, so sweeps
    /// over many systems amortize the edge-table and inbox allocations.
    /// Byte-identical to [`System::try_run`] for the same system.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`].
    pub fn try_run_with_scratch(
        &mut self,
        horizon: u32,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon, None, scratch)
    }

    /// Runs the system with every device step *contained*: a device that
    /// panics, returns the wrong number of outputs, or emits a payload over
    /// `policy.max_payload_bytes` does not abort the run. Instead the
    /// incident is recorded as a [`DeviceMisbehavior`] in the returned
    /// behavior and the node is quarantined — silent on every outedge and
    /// frozen at a `"quarantined"` snapshot from the incident tick on.
    ///
    /// Quarantine keeps contained runs deterministic: the same devices and
    /// inputs misbehave at the same tick in every run, so behaviors remain
    /// functions of the system and scenario matching stays sound.
    ///
    /// The horizon is capped at `policy.max_ticks`; truncation is visible as
    /// the returned behavior's `horizon()`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] if a node has no device — an
    /// assembly error of the caller, not device misbehavior.
    pub fn run_contained(
        &mut self,
        horizon: u32,
        policy: &RunPolicy,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(
            horizon.min(policy.max_ticks),
            Some(policy),
            &mut RunScratch::new(),
        )
    }

    /// [`System::run_contained`] with caller-provided scratch buffers; see
    /// [`System::try_run_with_scratch`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] if a node has no device.
    pub fn run_contained_with_scratch(
        &mut self,
        horizon: u32,
        policy: &RunPolicy,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        self.run_inner(horizon.min(policy.max_ticks), Some(policy), scratch)
    }

    fn run_inner(
        &mut self,
        horizon: u32,
        policy: Option<&RunPolicy>,
        scratch: &mut RunScratch,
    ) -> Result<SystemBehavior, SystemError> {
        // The dense message plane lives in `crate::kernel`: a
        // structure-of-arrays tick loop over time-major slabs, so the same
        // code path also serves prefix-cached runs (mid-run snapshots are
        // slab prefix clones). Plain runs request no capture and resume
        // nothing.
        crate::kernel::run(
            &self.graph,
            &mut self.slots,
            horizon,
            policy,
            scratch,
            None,
            None,
        )
        .map(|(behavior, _)| behavior)
    }

    /// Contained run with prefix-cache plumbing: optionally resumes from a
    /// forked [`crate::kernel::TickSnapshot`] and optionally captures
    /// snapshots at the boundaries named by `capture`. Only
    /// `crate::prefixcache` calls this; byte-identical to
    /// [`System::run_contained`] for the same system by the kernel's
    /// contract.
    pub(crate) fn run_contained_prefixed(
        &mut self,
        horizon: u32,
        policy: &RunPolicy,
        resume: Option<crate::kernel::TickSnapshot>,
        capture: Option<&crate::kernel::CaptureSpec<'_>>,
    ) -> Result<(SystemBehavior, Vec<crate::kernel::TickSnapshot>), SystemError> {
        crate::kernel::run(
            &self.graph,
            &mut self.slots,
            horizon.min(policy.max_ticks),
            Some(policy),
            &mut RunScratch::new(),
            resume,
            capture,
        )
    }

    /// Runs the system with the pre-zero-copy loop: a `BTreeMap`-keyed edge
    /// plane, fresh inbox allocations every tick, and a deep byte copy for
    /// every delivered payload.
    ///
    /// No production path uses this — it is kept as the differential
    /// reference for the dense zero-copy plane: tests assert
    /// [`System::try_run`] produces byte-identical behaviors, and
    /// `crates/bench` measures the dense loop's speedup against it.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Unassigned`] or [`SystemError::PortMismatch`]
    /// exactly like [`System::try_run`]; containment is not replicated.
    pub fn run_reference(&mut self, horizon: u32) -> Result<SystemBehavior, SystemError> {
        let n = self.graph.node_count();
        for v in self.graph.nodes() {
            if self.slots[v.index()].is_none() {
                return Err(SystemError::Unassigned { node: v });
            }
        }
        let mut edges: BTreeMap<(NodeId, NodeId), Vec<Option<Payload>>> = self
            .graph
            .directed_edges()
            .into_iter()
            .map(|e| (e, Vec::with_capacity(horizon as usize)))
            .collect();
        let mut snaps: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(horizon as usize); n];

        for t in 0..horizon {
            let tick = Tick(t);
            let mut inboxes: Vec<Vec<Option<Payload>>> = Vec::with_capacity(n);
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()]
                    .as_ref()
                    .expect("run_reference is only reached after every node is assigned");
                let inbox = slot
                    .wiring()
                    .iter()
                    .map(|&w| {
                        if t == 0 {
                            None
                        } else {
                            // Deliberate deep copy — the cost the zero-copy
                            // plane removed.
                            edges[&(w, v)][t as usize - 1]
                                .as_ref()
                                .map(|m| Payload::from(m.to_vec()))
                        }
                    })
                    .collect();
                inboxes.push(inbox);
            }
            for v in self.graph.nodes() {
                let slot = self.slots[v.index()]
                    .as_mut()
                    .expect("run_reference is only reached after every node is assigned");
                let ports = slot.wiring().len();
                let out = slot.device.step(tick, &inboxes[v.index()]);
                if out.len() != ports {
                    return Err(SystemError::PortMismatch {
                        node: v,
                        expected: ports,
                        got: out.len(),
                    });
                }
                for (p, payload) in out.into_iter().enumerate() {
                    let w = slot.wiring()[p];
                    edges
                        .get_mut(&(v, w))
                        .expect("edge traces were pre-created for every wiring entry")
                        .push(payload);
                }
                snaps[v.index()].push(slot.device.snapshot());
            }
        }

        let nodes = self
            .graph
            .nodes()
            .map(|v| {
                let slot = self.slots[v.index()]
                    .as_ref()
                    .expect("run_reference is only reached after every node is assigned");
                NodeBehavior {
                    device_name: slot.device.name().to_string(),
                    input: slot.ctx.input,
                    snaps: std::mem::take(&mut snaps[v.index()]),
                }
            })
            .collect();
        Ok(SystemBehavior::new(
            Arc::clone(&self.graph),
            nodes,
            edges,
            horizon,
            Vec::new(),
        ))
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System(n={}, assigned={})",
            self.graph.node_count(),
            self.slots.iter().filter(|s| s.is_some()).count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{snapshot, Payload};
    use flm_graph::builders;

    /// Sends its node id on every port every tick; snapshot = count of
    /// messages received so far.
    struct Counter {
        me: u32,
        received: u32,
    }

    impl Device for Counter {
        fn name(&self) -> &'static str {
            "Counter"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.me = ctx.node.0;
        }
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            self.received += inbox.iter().flatten().count() as u32;
            inbox
                .iter()
                .map(|_| Some(vec![self.me as u8].into()))
                .collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(&self.received.to_be_bytes())
        }
    }

    fn counter() -> Box<dyn Device> {
        Box::new(Counter { me: 0, received: 0 })
    }

    #[test]
    fn messages_take_one_tick() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        sys.assign(NodeId(1), counter(), Input::None);
        let b = sys.run(3);
        // Nothing received at tick 0; one message per tick thereafter.
        assert_eq!(
            b.node(NodeId(0)).snaps[0],
            snapshot::undecided(&0u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[1],
            snapshot::undecided(&1u32.to_be_bytes())
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[2],
            snapshot::undecided(&2u32.to_be_bytes())
        );
        // Edge traces record the sends.
        assert_eq!(b.edge(NodeId(0), NodeId(1)).len(), 3);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], Some(vec![0].into()));
    }

    #[test]
    fn unassigned_node_is_an_error() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), counter(), Input::None);
        assert_eq!(
            sys.try_run(1).unwrap_err(),
            SystemError::Unassigned { node: NodeId(1) }
        );
    }

    #[test]
    fn bad_wiring_is_rejected() {
        let g = builders::triangle();
        let mut sys = System::new(g);
        let err = sys
            .assign_wired(
                NodeId(0),
                counter(),
                Input::None,
                NodeId(0),
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(1), NodeId(1)],
            )
            .unwrap_err();
        assert!(matches!(err, SystemError::BadWiring { .. }));
    }

    #[test]
    fn identical_systems_have_identical_behaviors() {
        // Determinism: the model's "a system has exactly one behavior".
        let run = || {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(v, counter(), Input::Bool(v.0 == 0));
            }
            sys.run(5)
        };
        let (a, b) = (run(), run());
        for v in a.graph().nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
        assert_eq!(a.edges(), b.edges());
    }

    /// Misbehaves on command: panics, returns the wrong port count, or
    /// emits an oversized payload at `at`.
    struct Hostile {
        at: Tick,
        mode: u8,
    }

    impl Device for Hostile {
        fn name(&self) -> &'static str {
            "Hostile"
        }
        fn init(&mut self, _ctx: &NodeCtx) {}
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            if t >= self.at {
                match self.mode {
                    0 => panic!("hostile device detonated"),
                    1 => return vec![None; inbox.len() + 3],
                    _ => return vec![Some(vec![0xAB; 64].into()); inbox.len()],
                }
            }
            inbox.iter().map(|_| Some(vec![7].into())).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(b"hostile")
        }
    }

    fn contained_run(mode: u8) -> SystemBehavior {
        let g = builders::triangle();
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(Hostile { at: Tick(1), mode }),
            Input::None,
        );
        sys.assign(NodeId(1), counter(), Input::None);
        sys.assign(NodeId(2), counter(), Input::None);
        let policy = RunPolicy {
            max_payload_bytes: 16,
            ..RunPolicy::default()
        };
        sys.run_contained(4, &policy).unwrap()
    }

    #[test]
    fn contained_run_records_panics_and_quarantines() {
        let b = contained_run(0);
        assert_eq!(b.misbehavior().len(), 1);
        let m = &b.misbehavior()[0];
        assert_eq!(m.node, NodeId(0));
        assert_eq!(m.tick, Tick(1));
        assert!(
            matches!(&m.kind, crate::behavior::MisbehaviorKind::Panic(msg) if msg.contains("detonated"))
        );
        // Quarantined: silent from the incident on, marker snapshot.
        assert!(b.edge(NodeId(0), NodeId(1))[0].is_some());
        assert!(b.edge(NodeId(0), NodeId(1))[1..]
            .iter()
            .all(Option::is_none));
        assert_eq!(
            b.node(NodeId(0)).snaps[1],
            snapshot::undecided(b"quarantined")
        );
        assert_eq!(
            b.node(NodeId(0)).snaps[3],
            snapshot::undecided(b"quarantined")
        );
        // Honest nodes keep running.
        assert!(b.edge(NodeId(1), NodeId(2))[3].is_some());
    }

    #[test]
    fn contained_run_records_port_mismatch() {
        let b = contained_run(1);
        assert!(matches!(
            b.misbehavior()[0].kind,
            crate::behavior::MisbehaviorKind::PortMismatch {
                expected: 2,
                got: 5
            }
        ));
        assert_eq!(
            b.misbehaving_nodes().into_iter().collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn contained_run_records_oversized_payload() {
        let b = contained_run(2);
        assert!(matches!(
            b.misbehavior()[0].kind,
            crate::behavior::MisbehaviorKind::OversizedPayload {
                port: 0,
                len: 64,
                limit: 16
            }
        ));
        // The oversized payload never reaches the wire.
        assert!(b.edge(NodeId(0), NodeId(1))[1..]
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn contained_runs_are_deterministic() {
        let (a, b) = (contained_run(0), contained_run(0));
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.misbehavior(), b.misbehavior());
        for v in a.graph().nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
    }

    #[test]
    fn contained_run_caps_ticks_at_the_policy_budget() {
        let mut sys = System::new(builders::path(2));
        sys.assign(NodeId(0), counter(), Input::None);
        sys.assign(NodeId(1), counter(), Input::None);
        let policy = RunPolicy {
            max_ticks: 3,
            ..RunPolicy::default()
        };
        let b = sys.run_contained(1000, &policy).unwrap();
        assert_eq!(b.horizon(), 3);
    }

    #[test]
    fn well_behaved_contained_run_matches_strict_run() {
        let build = || {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(v, counter(), Input::Bool(v.0 == 0));
            }
            sys
        };
        let strict = build().try_run(5).unwrap();
        let contained = build().run_contained(5, &RunPolicy::default()).unwrap();
        assert!(contained.misbehavior().is_empty());
        assert_eq!(strict.edges(), contained.edges());
        for v in strict.graph().nodes() {
            assert_eq!(strict.node(v), contained.node(v));
        }
    }

    #[test]
    fn dense_plane_matches_reference_loop() {
        // The zero-copy dense plane must be byte-identical to the seed's
        // copy-per-delivery loop on every observable.
        use crate::devices::TableDevice;
        for (seed, g) in [
            (1u64, builders::triangle()),
            (2, builders::complete(5)),
            (3, builders::cycle(9)),
            (4, builders::path(4)),
        ] {
            let build = || {
                let mut sys = System::new(g.clone());
                for v in g.nodes() {
                    sys.assign(
                        v,
                        Box::new(TableDevice::new(seed ^ u64::from(v.0), 6)),
                        Input::Bool(v.0.is_multiple_of(2)),
                    );
                }
                sys
            };
            let dense = build().try_run(8).unwrap();
            let reference = build().run_reference(8).unwrap();
            assert_eq!(dense.edges(), reference.edges());
            for v in g.nodes() {
                assert_eq!(dense.node(v), reference.node(v));
            }
        }
    }

    #[test]
    fn lifted_assignment_runs_on_cover() {
        use flm_graph::covering::Covering;
        use std::collections::BTreeSet;
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        let cov = Covering::double_cover_crossing(&tri, &a, &c).unwrap();
        let mut sys = System::new(cov.cover().clone());
        for s in cov.cover().nodes() {
            sys.assign_lifted(&cov, s, counter(), Input::None).unwrap();
        }
        let b = sys.run(4);
        // Every node eventually counts messages from both ports.
        for s in b.graph().nodes() {
            assert_eq!(b.node(s).snaps[3], snapshot::undecided(&6u32.to_be_bytes()));
        }
    }
}
