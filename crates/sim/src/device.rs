//! The [`Device`] trait: the paper's primitive "device" made executable.
//!
//! FLM leaves devices entirely abstract; the only properties the proofs use
//! are determinism (a system has exactly one behavior) and the Locality /
//! Fault axioms. Here a device is a deterministic state machine stepped once
//! per tick. Its *behavior* is the sequence of its state snapshots and the
//! message traces on its edges — exactly what the refuters compare.
//!
//! ## Ports, not node ids
//!
//! A device addresses its neighbors through *ports* — indices into the
//! ordered neighbor list of the **base-graph node it was written for**. This
//! is what makes covering installation meaningful: when the same device is
//! installed at a node of a covering graph, port `p` is wired to the lift of
//! the corresponding base edge, so the device cannot tell which graph it
//! inhabits. That indistinguishability is the engine of every proof.
//!
//! ## Decisions are part of the behavior
//!
//! The paper's `CHOOSE` maps node *behaviors* to outputs, so identical
//! behaviors must yield identical choices. We enforce that structurally: a
//! decision is encoded in the state snapshot itself (see [`snapshot`]), and
//! [`crate::behavior::NodeBehavior::decision`] reads it from the recorded
//! trace — never from the live device.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use flm_graph::NodeId;

/// A message payload: canonical bytes (see [`crate::wire`]) behind a
/// cheaply-clonable handle.
///
/// Payloads are immutable once constructed, so the simulator's message plane
/// is zero-copy: recording a payload on an edge trace, delivering it to an
/// inbox next tick, replaying it through a
/// [`crate::replay::ReplayDevice`] masquerade, and copying it into a
/// certificate's chain all clone the same `Arc<[u8]>` — a reference-count
/// bump, never a byte copy. Devices that want to *modify* received bytes
/// copy them out explicitly ([`Payload::to_vec`]) and build a new payload,
/// which keeps mutation visible at the call site.
///
/// Equality, ordering, and hashing are byte-wise, matching the refuters'
/// byte-for-byte behavior comparisons.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Wraps canonical bytes in a payload.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        Payload(bytes.into())
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes out for modification; the only way to "mutate" a
    /// payload is to build a new one from the copy.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload(Arc::from(&[][..]))
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(Arc::from(bytes))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Payload(Arc::from(&bytes[..]))
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(bytes: &[u8; N]) -> Self {
        Payload(Arc::from(&bytes[..]))
    }
}

impl<'a> IntoIterator for &'a Payload {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as the byte list, like the `Vec<u8>` it replaced, so debug
        // output (and the determinism tests diffing it) stays readable.
        fmt::Debug::fmt(&self.0, f)
    }
}

/// The input assigned to a node (FLM §2: Booleans, reals, or clocks; clocks
/// live in the separate [`crate::clock`] simulator).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Input {
    /// No input (faulty/replay nodes, or problems without inputs).
    #[default]
    None,
    /// A Boolean input (Byzantine/weak agreement, firing-squad stimulus).
    Bool(bool),
    /// A real-valued input (approximate agreement).
    Real(f64),
}

impl Input {
    /// Appends this input to a wire writer (tag byte, then the value).
    ///
    /// Reals are written as raw IEEE-754 bit patterns — not via
    /// [`crate::wire::Writer::f64`] — so that re-encoding a decoded
    /// certificate is byte-identical even for bit patterns (NaN payloads in
    /// hostile certificates) a device would never legitimately produce.
    pub fn encode(self, w: &mut crate::wire::Writer) {
        match self {
            Input::None => {
                w.u8(0);
            }
            Input::Bool(b) => {
                w.u8(1).bool(b);
            }
            Input::Real(r) => {
                w.u8(2).u64(r.to_bits());
            }
        }
    }

    /// Reads an input written by [`Input::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation or an unknown tag.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        match r.u8()? {
            0 => Ok(Input::None),
            1 => Ok(Input::Bool(r.bool()?)),
            2 => Ok(Input::Real(f64::from_bits(r.u64()?))),
            _ => Err(crate::wire::DecodeError),
        }
    }

    /// The Boolean value, if this is a Boolean input.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Input::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The real value, if this is a real input.
    pub fn as_real(self) -> Option<f64> {
        match self {
            Input::Real(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Input {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Input::None => write!(f, "-"),
            Input::Bool(b) => write!(f, "{}", u8::from(*b)),
            Input::Real(r) => write!(f, "{r}"),
        }
    }
}

/// A decision read off a node behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Chose a Boolean (Byzantine / weak agreement).
    Bool(bool),
    /// Chose a real number (approximate agreement).
    Real(f64),
    /// Entered the FIRE state (Byzantine firing squad).
    Fire,
}

impl Decision {
    /// Appends this decision to a wire writer (tag byte, then the value).
    /// Reals are written as raw bit patterns for the same canonicality
    /// reason as [`Input::encode`].
    pub fn encode(self, w: &mut crate::wire::Writer) {
        match self {
            Decision::Bool(b) => {
                w.u8(0).bool(b);
            }
            Decision::Real(r) => {
                w.u8(1).u64(r.to_bits());
            }
            Decision::Fire => {
                w.u8(2);
            }
        }
    }

    /// Reads a decision written by [`Decision::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation or an unknown tag.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        match r.u8()? {
            0 => Ok(Decision::Bool(r.bool()?)),
            1 => Ok(Decision::Real(f64::from_bits(r.u64()?))),
            2 => Ok(Decision::Fire),
            _ => Err(crate::wire::DecodeError),
        }
    }
}

/// Static context a device receives at initialization.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// The base-graph node this device instance was written for.
    pub node: NodeId,
    /// Base-graph neighbor ids, in port order: `ports[p]` is the neighbor
    /// a message sent on port `p` is addressed to (in the base graph).
    pub ports: Vec<NodeId>,
    /// The node's input.
    pub input: Input,
}

impl NodeCtx {
    /// Number of ports (the degree of the node in the base graph).
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The port connected to base neighbor `v`, if any.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.ports.iter().position(|&w| w == v)
    }
}

/// A deterministic message-passing state machine.
///
/// ## Contract
///
/// * **Determinism.** Given the same `init` context and the same inbox
///   sequence, a device must produce the same outputs and snapshots. (The
///   model's "a system has exactly one behavior".) Randomized strategies
///   must derive all randomness from explicit seeds fixed at construction.
/// * **Snapshot completeness.** [`Device::snapshot`] must capture every bit
///   of state that can influence future outputs; the refuters treat equal
///   snapshot traces as equal behaviors.
/// * **Port discipline.** `step` receives exactly one `Option<Payload>` per
///   port and must return exactly one per port (`None` = silence; silence
///   is itself observable on the edge).
///
/// Devices are `Send` so that mid-run snapshots (forked device state held
/// by `flm_sim::prefixcache`) can live in a process-global store shared
/// across worker threads.
pub trait Device: Send {
    /// Short human-readable name (`"EIG"`, `"Replay"`, …) used in reports.
    fn name(&self) -> &'static str;

    /// Called once before tick 0 with the node's static context.
    fn init(&mut self, ctx: &NodeCtx);

    /// Advances one tick. `inbox[p]` holds the payload delivered on port
    /// `p` at this tick (sent at the previous tick); the return value's
    /// entry `p` is the payload to send on port `p` this tick.
    fn step(&mut self, t: crate::Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>>;

    /// A canonical snapshot of the device's observable state *after* the
    /// current step, with any decision encoded per [`snapshot`].
    fn snapshot(&self) -> Vec<u8>;

    /// A complete, independent copy of the device's *runtime* state, used
    /// by the prefix cache to resume a run from a stored tick snapshot.
    ///
    /// The contract is total fidelity: the fork must step exactly like the
    /// original from here on. Devices that cannot guarantee that return
    /// `None` (the default) — the run then simply isn't prefix-cached,
    /// which is always sound.
    fn fork(&self) -> Option<Box<dyn Device>> {
        None
    }
}

/// Canonical snapshot encoding.
///
/// The first byte of every snapshot is a decision tag; the rest is free-form
/// device state. `CHOOSE` (see [`snapshot::decision_in`]) reads only the tag, so a
/// decision is a pure function of the behavior, as the paper requires.
pub mod snapshot {
    use super::Decision;

    /// Tag: no decision yet.
    pub const UNDECIDED: u8 = 0;
    /// Tag: decided a Boolean; the next byte is 0 or 1.
    pub const BOOL: u8 = 1;
    /// Tag: decided a real; the next 8 bytes are its bit pattern.
    pub const REAL: u8 = 2;
    /// Tag: the node is in the FIRE state at this tick.
    pub const FIRE: u8 = 3;

    /// Builds an undecided snapshot around `state`.
    pub fn undecided(state: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(1 + state.len());
        v.push(UNDECIDED);
        v.extend_from_slice(state);
        v
    }

    /// Builds a snapshot carrying a Boolean decision.
    pub fn decided_bool(b: bool, state: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(2 + state.len());
        v.push(BOOL);
        v.push(u8::from(b));
        v.extend_from_slice(state);
        v
    }

    /// Builds a snapshot carrying a real-valued decision.
    pub fn decided_real(r: f64, state: &[u8]) -> Vec<u8> {
        debug_assert!(!r.is_nan(), "NaN decisions are not canonical");
        let mut v = Vec::with_capacity(9 + state.len());
        v.push(REAL);
        v.extend_from_slice(&r.to_bits().to_be_bytes());
        v.extend_from_slice(state);
        v
    }

    /// Builds a snapshot marking the FIRE state.
    pub fn fire(state: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(1 + state.len());
        v.push(FIRE);
        v.extend_from_slice(state);
        v
    }

    /// Decodes the decision (if any) carried by one snapshot.
    pub fn decision_in(snap: &[u8]) -> Option<Decision> {
        match *snap.first()? {
            BOOL => Some(Decision::Bool(*snap.get(1)? != 0)),
            REAL => {
                let bits: [u8; 8] = snap.get(1..9)?.try_into().ok()?;
                Some(Decision::Real(f64::from_bits(u64::from_be_bytes(bits))))
            }
            FIRE => Some(Decision::Fire),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_accessors() {
        assert_eq!(Input::Bool(true).as_bool(), Some(true));
        assert_eq!(Input::Bool(true).as_real(), None);
        assert_eq!(Input::Real(0.25).as_real(), Some(0.25));
        assert_eq!(Input::None.as_bool(), None);
        assert_eq!(
            format!("{} {} {}", Input::None, Input::Bool(true), Input::Real(0.5)),
            "- 1 0.5"
        );
    }

    #[test]
    fn snapshot_round_trips_decisions() {
        assert_eq!(snapshot::decision_in(&snapshot::undecided(b"x")), None);
        assert_eq!(
            snapshot::decision_in(&snapshot::decided_bool(true, b"s")),
            Some(Decision::Bool(true))
        );
        assert_eq!(
            snapshot::decision_in(&snapshot::decided_real(1.5, &[])),
            Some(Decision::Real(1.5))
        );
        assert_eq!(
            snapshot::decision_in(&snapshot::fire(&[])),
            Some(Decision::Fire)
        );
        assert_eq!(snapshot::decision_in(&[]), None);
    }

    #[test]
    fn payload_is_bytewise_and_zero_copy() {
        let p: Payload = vec![1, 2, 3].into();
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(&p[..], &[1, 2, 3]);
        assert!(std::ptr::eq(p.as_bytes(), q.as_bytes())); // clone = Arc bump
        let mut bytes = p.to_vec();
        bytes.push(4);
        let r: Payload = bytes.into();
        assert_eq!(&p[..], &[1, 2, 3]); // original untouched
        assert!(p < r);
        assert_eq!(format!("{p:?}"), "[1, 2, 3]");
        assert!(Payload::default().is_empty());
        assert_eq!(Payload::from([7u8]), Payload::from(&[7u8][..]));
    }

    #[test]
    fn node_ctx_port_lookup() {
        let ctx = NodeCtx {
            node: NodeId(0),
            ports: vec![NodeId(2), NodeId(5)],
            input: Input::None,
        };
        assert_eq!(ctx.port_count(), 2);
        assert_eq!(ctx.port_to(NodeId(5)), Some(1));
        assert_eq!(ctx.port_to(NodeId(9)), None);
    }
}
