//! Asynchronous execution: a scheduling adversary over per-edge FIFO
//! channels.
//!
//! The synchronous kernel delivers every message exactly one tick after it
//! is sent (δ = 1). This module drops that guarantee: messages sit in a
//! per-directed-edge FIFO until a *scheduler* — an adversary — picks one
//! pending edge to deliver from next. The sequence of choices is the
//! [`AsyncRun::schedule`], a `Vec<u32>` over [`Graph::directed_edges`]
//! indices, and it is the whole witness: [`AsyncSystem::replay`] re-executes
//! a recorded schedule byte-for-byte, which is what the FLP-style
//! certificates in `flm-core` rest their soundness on.
//!
//! # Execution model
//!
//! * **Bootstrap.** Every device is initialized and stepped once at its
//!   local tick 0 with an empty inbox (exactly the synchronous kernel's
//!   tick 0); its sends seed the channels.
//! * **Delivery step.** The scheduler picks a pending directed edge
//!   `(u, v)`; the oldest message queued on it is handed to `v`, which
//!   steps at its *local* tick (its own step count) with an inbox that is
//!   empty except for `u`'s port. New sends append to the channels.
//! * **Termination.** The run ends when no messages are pending
//!   (quiescence), when the scheduler declines to deliver (starvation —
//!   the withheld messages stay pending as evidence), or when the
//!   fairness budget ([`RunPolicy::max_ticks`], counted in deliveries) is
//!   exhausted. Every ending is structured: [`AsyncRun`] records what was
//!   still pending and whether the budget ran out.
//!
//! Misbehavior (panics, port mismatches, oversized payloads) is contained
//! exactly as in the synchronous kernel: the node is quarantined, the
//! incident is recorded, and the run continues — an async probe never
//! crashes the process.
//!
//! Asynchronous runs are memoized in [`crate::runcache`] under the
//! dedicated `"async"` key domain, so they can never alias a synchronous
//! run (whose domains are `"link"`, `"cover"`, …); the prefix cache is not
//! consulted at all — its tick snapshots encode synchronous inbox
//! semantics and would be unsound to fork into an async execution.

use std::collections::VecDeque;
use std::sync::Arc;

use flm_graph::{Graph, NodeId};

use crate::auth::mix64;
use crate::behavior::{DeviceMisbehavior, MisbehaviorKind};
use crate::device::{snapshot, Decision, Device, Input, NodeCtx, Payload};
use crate::system::RunPolicy;
use crate::Tick;

/// How the scheduling adversary picks the next delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Round-robin over the directed-edge index space: the first pending
    /// edge at or after a rotating cursor. Every pending message is
    /// eventually delivered — the "fair" baseline a correct asynchronous
    /// protocol must decide under.
    Fair,
    /// Seeded-uniform choice among the pending edges. Deterministic for a
    /// fixed seed; a different flavor of fair-in-the-limit scheduling.
    Random {
        /// Seed for the per-step [`mix64`] draw.
        seed: u64,
    },
    /// The starvation / bivalence-seeking adversary: messages addressed to
    /// `victim` are withheld for as long as anything else is pending, and
    /// among the rest the chooser prefers (via one-step-forward /
    /// one-step-back [`Device::fork`] look-ahead) deliveries that do *not*
    /// make the receiver decide. When only victim-bound messages remain
    /// the adversary stops delivering entirely — the run ends with those
    /// messages pending, which is the starvation evidence.
    Adversarial {
        /// Seed rotating the preference order among equivalent choices.
        seed: u64,
        /// The node being starved.
        victim: NodeId,
    },
}

impl Strategy {
    /// A canonical rendering for certificates and reports, e.g.
    /// `fair`, `random(seed=0x2a)`, `starve(node=3, seed=0x1)`.
    pub fn describe(&self) -> String {
        match *self {
            Strategy::Fair => "fair".into(),
            Strategy::Random { seed } => format!("random(seed={seed:#x})"),
            Strategy::Adversarial { seed, victim } => {
                format!("starve(node={}, seed={seed:#x})", victim.0)
            }
        }
    }

    /// Encodes the strategy into a cache-key writer (deterministic, wire
    /// module canonical form).
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        match *self {
            Strategy::Fair => {
                w.u8(0);
            }
            Strategy::Random { seed } => {
                w.u8(1).u64(seed);
            }
            Strategy::Adversarial { seed, victim } => {
                w.u8(2).u64(seed).u32(victim.0);
            }
        }
    }
}

/// Why an asynchronous run could not even start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncError {
    /// A node was never assigned a device.
    Unassigned {
        /// The unassigned node.
        node: NodeId,
    },
}

impl std::fmt::Display for AsyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsyncError::Unassigned { node } => {
                write!(f, "node {node} has no device assigned")
            }
        }
    }
}

impl std::error::Error for AsyncError {}

/// A recorded schedule failed to replay: the schedule names a delivery the
/// execution state cannot perform. Every variant is a structured forgery
/// diagnosis — replay never panics on hostile schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The system itself was malformed (unassigned node).
    System(AsyncError),
    /// A schedule entry names a directed-edge index outside the graph.
    EdgeOutOfRange {
        /// Position in the schedule.
        index: usize,
        /// The offending edge index.
        edge: u32,
        /// Number of directed edges the graph actually has.
        edges: u32,
    },
    /// A schedule entry delivers from an edge whose channel is empty —
    /// the message was already delivered (or never sent).
    NothingPending {
        /// Position in the schedule.
        index: usize,
        /// The edge with an empty channel.
        edge: u32,
    },
    /// The schedule is longer than the fairness budget it claims to have
    /// run under.
    BudgetMismatch {
        /// Schedule length.
        len: usize,
        /// The policy's delivery budget.
        budget: u32,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::System(e) => write!(f, "{e}"),
            ReplayError::EdgeOutOfRange { index, edge, edges } => write!(
                f,
                "schedule[{index}] names edge {edge}, but the graph has only {edges} directed edges"
            ),
            ReplayError::NothingPending { index, edge } => write!(
                f,
                "schedule[{index}] delivers from edge {edge}, but nothing is pending there"
            ),
            ReplayError::BudgetMismatch { len, budget } => write!(
                f,
                "schedule has {len} deliveries but the policy budgets only {budget}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The observable outcome of an asynchronous execution: the schedule that
/// was taken and everything a certificate needs to re-check a violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncRun {
    /// The delivery choices, as [`Graph::directed_edges`] indices, in
    /// order. Replaying this schedule reproduces the run exactly.
    pub schedule: Vec<u32>,
    /// Each node's decision latch: the first decision its snapshot ever
    /// showed, or `None` if it never decided.
    pub decisions: Vec<Option<Decision>>,
    /// Each node's local step count (bootstrap included).
    pub steps: Vec<u32>,
    /// Messages still pending per directed edge when the run ended, in
    /// edge-index order (sparse: only non-empty channels are listed).
    pub pending: Vec<(u32, u32)>,
    /// True when the run stopped because the delivery budget ran out
    /// rather than by quiescence or scheduler starvation.
    pub budget_exhausted: bool,
    /// Contained incidents, in delivery order.
    pub misbehavior: Vec<DeviceMisbehavior>,
    /// `Device::fork` look-aheads the scheduler performed (the bivalence
    /// probe counter; zero for fair/random strategies).
    pub lookahead_forks: u64,
}

impl AsyncRun {
    /// Total messages still pending when the run ended.
    pub fn pending_total(&self) -> u32 {
        self.pending.iter().map(|&(_, k)| k).sum()
    }

    /// Nodes whose decision latch is empty, ascending.
    pub fn undecided(&self) -> Vec<NodeId> {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Approximate retained bytes, for the run cache's byte accounting.
    pub fn approx_bytes(&self) -> u64 {
        (self.schedule.len() * 4
            + self.decisions.len() * 16
            + self.steps.len() * 4
            + self.pending.len() * 8
            + self.misbehavior.len() * 48
            + 64) as u64
    }
}

/// An asynchronous system under assembly: a graph plus one device and
/// input per node, mirroring [`crate::System`]'s `assign` surface.
pub struct AsyncSystem {
    graph: Arc<Graph>,
    slots: Vec<Option<(Box<dyn Device>, Input)>>,
}

impl AsyncSystem {
    /// A system over `graph` with no devices assigned yet.
    pub fn new(graph: Graph) -> AsyncSystem {
        let n = graph.node_count();
        AsyncSystem {
            graph: Arc::new(graph),
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Assigns `device` (with `input`) to node `v`, replacing any previous
    /// assignment.
    pub fn assign(&mut self, v: NodeId, device: Box<dyn Device>, input: Input) {
        self.slots[v.index()] = Some((device, input));
    }

    /// Runs under `strategy`, recording the schedule it takes.
    ///
    /// # Errors
    ///
    /// [`AsyncError::Unassigned`] if any node has no device. Device
    /// misbehavior does not error — it is contained and recorded.
    pub fn run(self, strategy: &Strategy, policy: &RunPolicy) -> Result<AsyncRun, AsyncError> {
        let mut exec = Exec::assemble(self, policy).map_err(|e| match e {
            ReplayError::System(e) => e,
            _ => unreachable!("assemble only raises system errors"),
        })?;
        let budget = policy.max_ticks;
        let mut chooser = Chooser::new(*strategy);
        while (exec.schedule.len() as u32) < budget {
            let Some(edge) = chooser.pick(&mut exec) else {
                // Quiescent or deliberately starved: both end the run with
                // the channel state as evidence.
                return Ok(exec.finish(false));
            };
            exec.deliver(edge);
        }
        let quiescent = exec.pending_edges().is_empty();
        Ok(exec.finish(!quiescent))
    }

    /// Replays a recorded `schedule` exactly, validating every entry
    /// against the evolving channel state.
    ///
    /// # Errors
    ///
    /// A structured [`ReplayError`] for any schedule the execution state
    /// cannot perform — hostile schedules are diagnosed, never panicked
    /// on.
    pub fn replay(self, schedule: &[u32], policy: &RunPolicy) -> Result<AsyncRun, ReplayError> {
        if schedule.len() as u64 > u64::from(policy.max_ticks) {
            return Err(ReplayError::BudgetMismatch {
                len: schedule.len(),
                budget: policy.max_ticks,
            });
        }
        let mut exec = Exec::assemble(self, policy)?;
        let edges = exec.edge_count as u32;
        for (index, &edge) in schedule.iter().enumerate() {
            if edge >= edges {
                return Err(ReplayError::EdgeOutOfRange { index, edge, edges });
            }
            if exec.queues[edge as usize].is_empty() {
                return Err(ReplayError::NothingPending { index, edge });
            }
            exec.deliver(edge);
        }
        let budget_exhausted =
            schedule.len() as u32 == policy.max_ticks && !exec.pending_edges().is_empty();
        Ok(exec.finish(budget_exhausted))
    }
}

/// The live execution state shared by recording runs and replay.
struct Exec {
    edge_count: usize,
    /// Directed edges in lex order — the schedule's index space.
    edge_list: Vec<(NodeId, NodeId)>,
    /// Per directed edge: the FIFO channel.
    queues: Vec<VecDeque<Payload>>,
    /// Receiver-side port index per directed edge `(u, v)`: `u`'s position
    /// among `v`'s sorted neighbors.
    in_port: Vec<usize>,
    /// Sender-side edge index per `(node, port)`: flat, offset by
    /// `port_off`.
    out_edges: Vec<u32>,
    port_off: Vec<usize>,
    devices: Vec<Box<dyn Device>>,
    quarantined: Vec<bool>,
    steps: Vec<u32>,
    decisions: Vec<Option<Decision>>,
    schedule: Vec<u32>,
    misbehavior: Vec<DeviceMisbehavior>,
    lookahead_forks: u64,
    max_payload_bytes: usize,
}

impl Exec {
    /// Builds the port tables, initializes every device, and performs the
    /// bootstrap step (local tick 0, empty inbox) for every node.
    fn assemble(sys: AsyncSystem, policy: &RunPolicy) -> Result<Exec, ReplayError> {
        let graph = sys.graph;
        let n = graph.node_count();
        for v in graph.nodes() {
            if sys.slots[v.index()].is_none() {
                return Err(ReplayError::System(AsyncError::Unassigned { node: v }));
            }
        }
        crate::system::install_quiet_panic_hook();
        let edge_list = graph.directed_edges();
        let edge_count = edge_list.len();
        let mut in_port = vec![0usize; edge_count];
        let mut out_edges = Vec::new();
        let mut port_off = Vec::with_capacity(n + 1);
        port_off.push(0usize);
        for v in graph.nodes() {
            for (p, w) in graph.neighbors(v).enumerate() {
                let out = edge_list
                    .binary_search(&(v, w))
                    .expect("neighbors are directed edges by construction");
                out_edges.push(out as u32);
                let inc = edge_list
                    .binary_search(&(w, v))
                    .expect("links are symmetric");
                in_port[inc] = p;
            }
            port_off.push(out_edges.len());
        }
        let mut exec = Exec {
            edge_count,
            queues: (0..edge_count).map(|_| VecDeque::new()).collect(),
            edge_list,
            in_port,
            out_edges,
            port_off,
            devices: Vec::with_capacity(n),
            quarantined: vec![false; n],
            steps: vec![0; n],
            decisions: vec![None; n],
            schedule: Vec::new(),
            misbehavior: Vec::new(),
            lookahead_forks: 0,
            max_payload_bytes: policy.max_payload_bytes,
        };
        let mut slots = sys.slots;
        for v in graph.nodes() {
            let (mut device, input) = slots[v.index()].take().expect("checked above");
            let ctx = NodeCtx {
                node: v,
                ports: graph.neighbors(v).collect(),
                input,
            };
            let ports = ctx.port_count();
            if let Err(msg) = crate::contain_panics(|| device.init(&ctx)) {
                exec.quarantine(v, MisbehaviorKind::Panic(msg));
            }
            exec.devices.push(device);
            // Bootstrap: the empty-inbox step every node takes before any
            // delivery, mirroring the synchronous kernel's tick 0.
            let inbox = vec![None; ports];
            exec.step_node(v, &inbox);
        }
        Ok(exec)
    }

    fn quarantine(&mut self, v: NodeId, kind: MisbehaviorKind) {
        self.misbehavior.push(DeviceMisbehavior {
            node: v,
            tick: Tick(self.steps[v.index()]),
            kind,
        });
        self.quarantined[v.index()] = true;
    }

    /// Steps node `v` with `inbox`, containing panics, validating the
    /// output shape, enqueueing its sends, and updating its decision
    /// latch.
    fn step_node(&mut self, v: NodeId, inbox: &[Option<Payload>]) {
        let i = v.index();
        if self.quarantined[i] {
            return;
        }
        let ports = self.port_off[i + 1] - self.port_off[i];
        let tick = Tick(self.steps[i]);
        let device = &mut self.devices[i];
        let out = match crate::contain_panics(|| device.step(tick, inbox)) {
            Err(msg) => {
                self.quarantine(v, MisbehaviorKind::Panic(msg));
                return;
            }
            Ok(out) if out.len() != ports => {
                let got = out.len();
                self.quarantine(
                    v,
                    MisbehaviorKind::PortMismatch {
                        expected: ports,
                        got,
                    },
                );
                return;
            }
            Ok(out) => out,
        };
        if let Some((port, len)) = out.iter().enumerate().find_map(|(p, m)| {
            m.as_ref()
                .filter(|m| m.len() > self.max_payload_bytes)
                .map(|m| (p, m.len()))
        }) {
            self.quarantine(
                v,
                MisbehaviorKind::OversizedPayload {
                    port,
                    len,
                    limit: self.max_payload_bytes,
                },
            );
            return;
        }
        self.steps[i] += 1;
        for (p, payload) in out.into_iter().enumerate() {
            if let Some(payload) = payload {
                let e = self.out_edges[self.port_off[i] + p] as usize;
                self.queues[e].push_back(payload);
            }
        }
        if self.decisions[i].is_none() {
            self.decisions[i] = snapshot::decision_in(&self.devices[i].snapshot());
        }
    }

    /// Delivers the oldest message on directed edge `e` (which must be
    /// pending) and records the choice in the schedule.
    fn deliver(&mut self, e: u32) {
        let payload = self.queues[e as usize]
            .pop_front()
            .expect("deliver is only called on pending edges");
        self.schedule.push(e);
        let (_, v) = self.edge_endpoints(e);
        let i = v.index();
        let ports = self.port_off[i + 1] - self.port_off[i];
        // A quarantined receiver consumes the message silently: the channel
        // drains, the state is untouched.
        if self.quarantined[i] {
            return;
        }
        let mut inbox = vec![None; ports];
        inbox[self.in_port[e as usize]] = Some(payload);
        self.step_node(v, &inbox);
    }

    /// The endpoints of directed edge `e` (lex position in
    /// [`Graph::directed_edges`]).
    fn edge_endpoints(&self, e: u32) -> (NodeId, NodeId) {
        self.edge_list[e as usize]
    }

    /// Indices of edges with at least one pending message, ascending.
    fn pending_edges(&self) -> Vec<u32> {
        (0..self.edge_count as u32)
            .filter(|&e| !self.queues[e as usize].is_empty())
            .collect()
    }

    /// One-step-forward / one-step-back probe: would delivering the head
    /// of edge `e` make its receiver decide? Forks the receiver, delivers
    /// to the fork, inspects its snapshot, and discards the fork. `None`
    /// when the device cannot fork.
    fn delivery_decides(&mut self, e: u32) -> Option<bool> {
        let (_, v) = self.edge_endpoints(e);
        let i = v.index();
        if self.quarantined[i] || self.decisions[i].is_some() {
            return Some(self.decisions[i].is_some());
        }
        let mut fork = self.devices[i].fork()?;
        self.lookahead_forks += 1;
        let payload = self.queues[e as usize].front()?.clone();
        let ports = self.port_off[i + 1] - self.port_off[i];
        let mut inbox = vec![None; ports];
        inbox[self.in_port[e as usize]] = Some(payload);
        let tick = Tick(self.steps[i]);
        let snap = crate::contain_panics(move || {
            fork.step(tick, &inbox);
            fork.snapshot()
        })
        .ok()?;
        Some(snapshot::decision_in(&snap).is_some())
    }

    fn finish(self, budget_exhausted: bool) -> AsyncRun {
        let pending = (0..self.edge_count as u32)
            .filter_map(|e| {
                let k = self.queues[e as usize].len() as u32;
                (k > 0).then_some((e, k))
            })
            .collect();
        AsyncRun {
            schedule: self.schedule,
            decisions: self.decisions,
            steps: self.steps,
            pending,
            budget_exhausted,
            misbehavior: self.misbehavior,
            lookahead_forks: self.lookahead_forks,
        }
    }
}

/// The scheduling adversary: one `pick` per delivery.
struct Chooser {
    strategy: Strategy,
    cursor: u32,
    draws: u64,
}

impl Chooser {
    fn new(strategy: Strategy) -> Chooser {
        Chooser {
            strategy,
            cursor: 0,
            draws: 0,
        }
    }

    /// Picks the next edge to deliver from, or `None` to end the run
    /// (quiescence, or deliberate starvation for the adversarial
    /// strategy).
    fn pick(&mut self, exec: &mut Exec) -> Option<u32> {
        let pending = exec.pending_edges();
        if pending.is_empty() {
            return None;
        }
        match self.strategy {
            Strategy::Fair => {
                let chosen = pending
                    .iter()
                    .copied()
                    .find(|&e| e >= self.cursor)
                    .unwrap_or(pending[0]);
                self.cursor = chosen + 1;
                Some(chosen)
            }
            Strategy::Random { seed } => {
                let i = mix64(seed ^ self.draws.wrapping_mul(0x9E37)) % pending.len() as u64;
                self.draws += 1;
                Some(pending[i as usize])
            }
            Strategy::Adversarial { seed, victim } => {
                let candidates: Vec<u32> = pending
                    .iter()
                    .copied()
                    .filter(|&e| exec.edge_endpoints(e).1 != victim)
                    .collect();
                if candidates.is_empty() {
                    // Only victim-bound messages remain: withhold them all.
                    return None;
                }
                // Rotate the preference order by the seed so distinct seeds
                // explore distinct schedules, then take the first candidate
                // whose delivery keeps its receiver undecided (one step
                // forward, one step back). If every delivery decides — or
                // look-ahead is unavailable — the rotation's head stands.
                let rot = (mix64(seed ^ self.draws) % candidates.len() as u64) as usize;
                self.draws += 1;
                let chosen = (0..candidates.len())
                    .map(|k| candidates[(rot + k) % candidates.len()])
                    .find(|&e| exec.delivery_decides(e) == Some(false))
                    .unwrap_or(candidates[rot]);
                Some(chosen)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::ConstantDevice;
    use flm_graph::builders;

    /// A device that broadcasts its boolean input once, then decides the
    /// OR of everything it has heard as soon as every port has reported.
    #[derive(Clone)]
    struct WaitAll {
        my: bool,
        heard: Vec<bool>,
        acc: bool,
        decided: Option<bool>,
    }

    impl WaitAll {
        fn new() -> WaitAll {
            WaitAll {
                my: false,
                heard: Vec::new(),
                acc: false,
                decided: None,
            }
        }
    }

    impl Device for WaitAll {
        fn name(&self) -> &'static str {
            "test-wait-all"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.my = matches!(ctx.input, Input::Bool(true));
            self.heard = vec![false; ctx.port_count()];
        }
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            for (p, m) in inbox.iter().enumerate() {
                if let Some(m) = m {
                    self.heard[p] = true;
                    self.acc |= m.as_bytes() == [1];
                }
            }
            if self.decided.is_none() && self.heard.iter().all(|&h| h) {
                self.decided = Some(self.acc || self.my);
            }
            if t.0 == 0 {
                vec![Some(Payload::new(vec![u8::from(self.my)])); inbox.len()]
            } else {
                vec![None; inbox.len()]
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            match self.decided {
                Some(b) => snapshot::decided_bool(b, &[]),
                None => snapshot::undecided(&[]),
            }
        }
        fn fork(&self) -> Option<Box<dyn Device>> {
            Some(Box::new(self.clone()))
        }
    }

    fn wait_all_system() -> AsyncSystem {
        let g = builders::triangle();
        let mut sys = AsyncSystem::new(g);
        for v in sys.graph().nodes() {
            sys.assign(v, Box::new(WaitAll::new()), Input::Bool(v.0 == 0));
        }
        sys
    }

    #[test]
    fn fair_schedule_delivers_everything_and_decides() {
        let run = wait_all_system()
            .run(&Strategy::Fair, &RunPolicy::default())
            .unwrap();
        assert!(run.pending.is_empty(), "fair runs drain the channels");
        assert!(!run.budget_exhausted);
        assert_eq!(run.undecided(), Vec::<NodeId>::new());
        for d in &run.decisions {
            assert_eq!(*d, Some(Decision::Bool(true)));
        }
        // Triangle, 3 broadcasts of 2 messages each: 6 deliveries.
        assert_eq!(run.schedule.len(), 6);
    }

    #[test]
    fn adversary_starves_the_victim_into_non_decision() {
        let victim = NodeId(2);
        let run = wait_all_system()
            .run(
                &Strategy::Adversarial { seed: 1, victim },
                &RunPolicy::default(),
            )
            .unwrap();
        assert_eq!(run.undecided(), vec![victim]);
        assert!(!run.budget_exhausted, "starvation ends the run, not budget");
        assert!(
            run.pending_total() > 0,
            "withheld victim-bound messages stay pending"
        );
        for &(e, _) in &run.pending {
            let g = builders::triangle();
            let (_, to) = (
                g.directed_edges()[e as usize].0,
                g.directed_edges()[e as usize].1,
            );
            assert_eq!(to, victim, "only victim-bound messages are withheld");
        }
    }

    #[test]
    fn replay_reproduces_a_recorded_run_exactly() {
        for strategy in [
            Strategy::Fair,
            Strategy::Random { seed: 7 },
            Strategy::Adversarial {
                seed: 3,
                victim: NodeId(0),
            },
        ] {
            let policy = RunPolicy::default();
            let run = wait_all_system().run(&strategy, &policy).unwrap();
            let replayed = wait_all_system().replay(&run.schedule, &policy).unwrap();
            assert_eq!(run.schedule, replayed.schedule);
            assert_eq!(run.decisions, replayed.decisions);
            assert_eq!(run.steps, replayed.steps);
            assert_eq!(run.pending, replayed.pending);
            assert_eq!(run.budget_exhausted, replayed.budget_exhausted);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        for strategy in [
            Strategy::Random { seed: 99 },
            Strategy::Adversarial {
                seed: 99,
                victim: NodeId(1),
            },
        ] {
            let a = wait_all_system()
                .run(&strategy, &RunPolicy::default())
                .unwrap();
            let b = wait_all_system()
                .run(&strategy, &RunPolicy::default())
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn forged_schedules_are_structured_errors() {
        let policy = RunPolicy::default();
        let run = wait_all_system().run(&Strategy::Fair, &policy).unwrap();

        // Out-of-range edge.
        let mut forged = run.schedule.clone();
        forged[0] = 999;
        match wait_all_system().replay(&forged, &policy) {
            Err(ReplayError::EdgeOutOfRange {
                index: 0,
                edge: 999,
                ..
            }) => {}
            other => panic!("expected EdgeOutOfRange, got {other:?}"),
        }

        // Replayed-after-delivered: duplicate the first delivery after the
        // channel has fully drained.
        let mut doubled = run.schedule.clone();
        doubled.push(run.schedule[0]);
        match wait_all_system().replay(&doubled, &policy) {
            Err(ReplayError::NothingPending { .. }) => {}
            other => panic!("expected NothingPending, got {other:?}"),
        }

        // Budget mismatch.
        let tight = RunPolicy {
            max_ticks: 2,
            ..RunPolicy::default()
        };
        match wait_all_system().replay(&run.schedule, &tight) {
            Err(ReplayError::BudgetMismatch { .. }) => {}
            other => panic!("expected BudgetMismatch, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A chatty device that always has something in flight would need
        // an unbounded schedule; WaitAll quiesces, so instead cap the
        // budget below the 6 deliveries a fair run needs.
        let policy = RunPolicy {
            max_ticks: 3,
            ..RunPolicy::default()
        };
        let run = wait_all_system().run(&Strategy::Fair, &policy).unwrap();
        assert_eq!(run.schedule.len(), 3);
        assert!(run.budget_exhausted);
        assert!(run.pending_total() > 0);
    }

    #[test]
    fn misbehaving_devices_are_quarantined_not_crashed() {
        struct Bomb;
        impl Device for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn init(&mut self, _ctx: &NodeCtx) {}
            fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
                if t.0 == 0 {
                    vec![Some(Payload::new(vec![1])); inbox.len()]
                } else {
                    panic!("boom on delivery");
                }
            }
            fn snapshot(&self) -> Vec<u8> {
                snapshot::undecided(&[])
            }
        }
        let g = builders::triangle();
        let mut sys = AsyncSystem::new(g);
        sys.assign(NodeId(0), Box::new(Bomb), Input::None);
        sys.assign(NodeId(1), Box::new(WaitAll::new()), Input::Bool(true));
        sys.assign(NodeId(2), Box::new(WaitAll::new()), Input::Bool(false));
        let run = sys.run(&Strategy::Fair, &RunPolicy::default()).unwrap();
        assert_eq!(run.misbehavior.len(), 1);
        assert_eq!(run.misbehavior[0].node, NodeId(0));
        assert!(matches!(run.misbehavior[0].kind, MisbehaviorKind::Panic(_)));
        // The run still completes; the other nodes decide.
        assert!(run.decisions[1].is_some());
        assert!(run.decisions[2].is_some());
    }

    #[test]
    fn constant_devices_quiesce_immediately() {
        let g = builders::triangle();
        let mut sys = AsyncSystem::new(g);
        for v in sys.graph().nodes() {
            sys.assign(v, Box::new(ConstantDevice::new()), Input::Bool(false));
        }
        let run = sys.run(&Strategy::Fair, &RunPolicy::default()).unwrap();
        // ConstantDevice sends nothing: no deliveries at all.
        assert!(run.schedule.is_empty());
        assert!(run.pending.is_empty());
    }
}
