//! Simulated unforgeable signatures.
//!
//! The paper observes (§2) that the Fault axiom expresses an unrestricted
//! masquerading capability, and that *weakening it significantly — say, by
//! adding an unforgeable signature assumption — makes consensus possible*
//! [LSP, PSL]. `flm-protocols::dolev_strong` demonstrates exactly that, and
//! this module supplies the signature substrate.
//!
//! Signatures are simulated: an [`AuthDomain`] holds a secret key; each node
//! receives a [`Signer`] that can produce tags **only for its own id** but
//! can verify anyone's. Unforgeability holds by construction — adversary
//! devices in this workspace receive the same one-node signer an honest
//! device would, and the domain key never leaves this module — which is
//! precisely the modeling assumption of authenticated Byzantine agreement.

use flm_graph::NodeId;

/// A 64-bit signature tag.
pub type Sig = u64;

/// Deterministic 64-bit mixer (splitmix64 finalizer). Public because the
/// deterministic "arbitrary protocol" devices in [`crate::devices`] reuse it
/// to derive behavior from seeds.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A signing authority for one system: the root of trust all signers share.
#[derive(Debug, Clone)]
pub struct AuthDomain {
    key: u64,
}

impl AuthDomain {
    /// Creates a domain from a seed. Different seeds give independent
    /// signature schemes.
    pub fn new(seed: u64) -> Self {
        AuthDomain {
            key: mix64(seed ^ 0xA5A5_5A5A_DEAD_BEEF),
        }
    }

    /// The signer handle for `node` — hand each device only its own.
    pub fn signer_for(&self, node: NodeId) -> Signer {
        Signer {
            key: self.key,
            node,
        }
    }

    fn tag(&self, node: NodeId, msg: &[u8]) -> Sig {
        let mut h = mix64(self.key ^ u64::from(node.0).wrapping_mul(0x100_0000_01B3));
        for chunk in msg.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = mix64(h ^ u64::from_be_bytes(buf));
        }
        h
    }
}

/// A per-node signing handle: signs as `node`, verifies anyone.
#[derive(Debug, Clone)]
pub struct Signer {
    key: u64,
    node: NodeId,
}

impl Signer {
    /// The node this handle signs for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Signs `msg` as this handle's node.
    pub fn sign(&self, msg: &[u8]) -> Sig {
        AuthDomain { key: self.key }.tag(self.node, msg)
    }

    /// Verifies that `sig` is `signer`'s signature over `msg`.
    pub fn verify(&self, signer: NodeId, msg: &[u8], sig: Sig) -> bool {
        AuthDomain { key: self.key }.tag(signer, msg) == sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_verify_and_bind_signer_and_message() {
        let dom = AuthDomain::new(7);
        let a = dom.signer_for(NodeId(0));
        let b = dom.signer_for(NodeId(1));
        let sig = a.sign(b"value=1");
        assert!(b.verify(NodeId(0), b"value=1", sig));
        assert!(!b.verify(NodeId(0), b"value=0", sig));
        assert!(!b.verify(NodeId(1), b"value=1", sig));
    }

    #[test]
    fn a_signer_cannot_produce_another_nodes_tag() {
        let dom = AuthDomain::new(7);
        let a = dom.signer_for(NodeId(0));
        let b = dom.signer_for(NodeId(1));
        // b signing the same message yields b's tag, not a's.
        assert_ne!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn domains_are_independent() {
        let d1 = AuthDomain::new(1);
        let d2 = AuthDomain::new(2);
        assert_ne!(
            d1.signer_for(NodeId(0)).sign(b"m"),
            d2.signer_for(NodeId(0)).sign(b"m")
        );
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Distinct inputs give distinct outputs on a sample (sanity, not proof).
        let outs: std::collections::BTreeSet<u64> = (0..1000).map(mix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
