//! Discrete simulation time.

use std::fmt;

/// A discrete instant of simulated time.
///
/// The simulator advances in unit ticks starting at 0. Every message sent at
/// tick `t` is delivered at tick `t + 1`, so one tick is exactly the paper's
/// minimum transmission delay δ from the Bounded-Delay Locality axiom.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u32);

impl Tick {
    /// The start of time.
    pub const ZERO: Tick = Tick(0);

    /// The tick's position when indexing per-tick traces.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next tick.
    #[inline]
    pub fn next(self) -> Tick {
        Tick(self.0 + 1)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for Tick {
    fn from(v: u32) -> Self {
        Tick(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        assert!(Tick::ZERO < Tick(1));
        assert_eq!(Tick(3).next(), Tick(4));
        assert_eq!(Tick(7).index(), 7);
        assert_eq!(Tick::from(2u32), Tick(2));
        assert_eq!(format!("{} {:?}", Tick(5), Tick(5)), "t5 t5");
    }
}
