//! The [`Protocol`] abstraction: a family of devices, one per node.
//!
//! The impossibility theorems quantify over *all* protocols; the refuters in
//! `flm-core` therefore take any implementor of this trait, install its
//! devices in a covering graph, and derive a contradiction. The concrete
//! protocols in `flm-protocols` (EIG, phase-king, …) implement it too, which
//! is what lets the frontier experiments run the same code on both sides of
//! the `3f+1` boundary.

use flm_graph::{Graph, NodeId};

use crate::clock::ClockDevice;
use crate::device::Device;

/// A deterministic assignment of devices to the nodes of a base graph.
///
/// Calling [`Protocol::device`] twice with the same arguments must produce
/// devices with identical behavior — the refuters rely on re-instantiating
/// "the same" device in several systems.
///
/// `Send + Sync` is a supertrait: a protocol is an immutable device factory,
/// so the refuters may instantiate devices from several worker threads at
/// once (each *device* stays thread-local; only the factory is shared).
pub trait Protocol: Send + Sync {
    /// Human-readable protocol name for reports.
    fn name(&self) -> String;

    /// The device node `v` of `g` runs.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device>;

    /// Ticks after which every correct node is guaranteed to have decided
    /// when the protocol runs on `g` (with up to the protocol's own fault
    /// budget misbehaving). Refuters and experiment harnesses use this as
    /// the run horizon.
    fn horizon(&self, g: &Graph) -> u32;
}

/// A deterministic assignment of clock-synchronization devices to nodes.
///
/// The synchronization claim (envelopes, agreement constant α, stabilization
/// time t′) lives with the problem statement in `flm-core`; this trait only
/// manufactures the devices. `Send + Sync` for the same reason as
/// [`Protocol`]: the factory may be shared across worker threads.
pub trait ClockProtocol: Send + Sync {
    /// Human-readable protocol name for reports.
    fn name(&self) -> String;

    /// The clock device node `v` of `g` runs.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn ClockDevice>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::ConstantDevice;

    struct Trivial;

    impl Protocol for Trivial {
        fn name(&self) -> String {
            "Trivial".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(ConstantDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            1
        }
    }

    #[test]
    fn protocol_objects_are_usable_boxed() {
        let p: Box<dyn Protocol> = Box::new(Trivial);
        let g = flm_graph::builders::triangle();
        assert_eq!(p.name(), "Trivial");
        assert_eq!(p.horizon(&g), 1);
        let _ = p.device(&g, NodeId(0));
    }
}
