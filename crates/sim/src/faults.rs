//! Deterministic fault injection on chosen edges at chosen ticks.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultRule`]s, each naming a
//! sending node, an optional target neighbor (none = every outedge), a tick
//! window, and a [`FaultAction`]: drop the payload, corrupt its bytes,
//! equivocate (duplicate one payload across ports with per-port variation),
//! or delay it. Everything is a pure function of the seed, so a plan
//! reproduces the same run bit-for-bit — faults here are *scheduled
//! experiments*, not randomness at run time.
//!
//! Plans compose with the adversary zoo ([`crate::adversary`]): a plan wraps
//! *any* device via [`FaultPlan::wrap`], including an adversary, because
//! injection happens on the outputs of `step`, after the wrapped device has
//! produced them. In FLM terms a wrapped node is simply another faulty
//! device — the Fault axiom already licenses every behavior it can exhibit —
//! so injection never steps outside the model; it just makes specific bad
//! behaviors easy to schedule and reproduce.
//!
//! # Composition precedence
//!
//! Several rules (possibly from [`FaultPlan::merge`]d plans) may target the
//! same edge at the same tick. The outcome is rule-order-independent, fixed
//! by the per-tick action order **equivocate → corrupt → drop → delay**:
//!
//! * *Equivocate + corrupt*: the corruption keystream is applied to the
//!   equivocated copy.
//! * *Anything + drop*: drop wins — the edge is silent that tick, and a
//!   dropped payload is **not** captured for later delayed delivery.
//! * *Several delays*: the **minimum** delay wins (the payload is held the
//!   shortest matched time), regardless of the order rules were added.
//! * While any delay rule matches an edge, due held payloads stay queued;
//!   they flush through the idle-port rule once no delay rule matches.

use std::collections::{BTreeSet, VecDeque};

use flm_graph::{Graph, NodeId};

use crate::auth::mix64;
use crate::device::{Device, NodeCtx, Payload};
use crate::Tick;

/// What a [`FaultRule`] does to a matched outbound payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Replace the payload with silence.
    Drop,
    /// XOR the payload bytes with a seed-derived stream (silence stays
    /// silent — there is nothing on the wire to corrupt).
    Corrupt,
    /// Send every matched port a copy of the node's first non-silent output
    /// this tick, tagged with a per-port salt byte — neighbors receive
    /// *conflicting* claims from the same sender.
    Equivocate,
    /// Hold the payload back and release it this many ticks later on the
    /// same port (FIFO; a held payload waits longer if the port is busy).
    Delay(u32),
}

/// One scheduled fault: an edge selector, a tick window, and an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The sending node the rule applies to.
    pub from: NodeId,
    /// The receiving neighbor, or `None` for every outedge of `from`.
    pub to: Option<NodeId>,
    /// First tick (inclusive) the rule is active.
    pub from_tick: u32,
    /// First tick the rule is no longer active (exclusive).
    pub until_tick: u32,
    /// What to do with matched payloads.
    pub action: FaultAction,
}

impl FaultRule {
    fn applies(&self, t: Tick, to: NodeId) -> bool {
        t.0 >= self.from_tick && t.0 < self.until_tick && self.to.is_none_or(|w| w == to)
    }
}

/// A seed-deterministic schedule of faults over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan; the seed drives corruption and equivocation bytes.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Drops everything `from` sends to `to` during `[from_tick, until_tick)`.
    pub fn drop_edge(self, from: NodeId, to: NodeId, from_tick: u32, until_tick: u32) -> Self {
        self.with_rule(FaultRule {
            from,
            to: Some(to),
            from_tick,
            until_tick,
            action: FaultAction::Drop,
        })
    }

    /// Corrupts everything `from` sends to `to` during the window.
    pub fn corrupt_edge(self, from: NodeId, to: NodeId, from_tick: u32, until_tick: u32) -> Self {
        self.with_rule(FaultRule {
            from,
            to: Some(to),
            from_tick,
            until_tick,
            action: FaultAction::Corrupt,
        })
    }

    /// Makes `from` equivocate on all its outedges during the window.
    pub fn equivocate(self, from: NodeId, from_tick: u32, until_tick: u32) -> Self {
        self.with_rule(FaultRule {
            from,
            to: None,
            from_tick,
            until_tick,
            action: FaultAction::Equivocate,
        })
    }

    /// Delays everything `from` sends to `to` by `by` ticks during the window.
    pub fn delay_edge(
        self,
        from: NodeId,
        to: NodeId,
        from_tick: u32,
        until_tick: u32,
        by: u32,
    ) -> Self {
        self.with_rule(FaultRule {
            from,
            to: Some(to),
            from_tick,
            until_tick,
            action: FaultAction::Delay(by),
        })
    }

    /// A seed-deterministic random plan: `count` rules over the directed
    /// edges of `g`, with windows inside `[0, horizon)`. The same arguments
    /// always produce the same plan.
    pub fn random(seed: u64, g: &Graph, horizon: u32, count: usize) -> Self {
        Self::random_from_edges(seed, g.directed_edges(), horizon, count)
    }

    /// Like [`FaultPlan::random`], but only edges whose *sender* is in
    /// `senders` are eligible — so [`FaultPlan::faulty_nodes`] is a subset
    /// of `senders` and the plan respects a fault budget chosen up front.
    /// The campaign sweeps use this to keep every probed scenario inside
    /// its declared `f`.
    pub fn random_among(
        seed: u64,
        g: &Graph,
        senders: &BTreeSet<NodeId>,
        horizon: u32,
        count: usize,
    ) -> Self {
        let edges = g
            .directed_edges()
            .into_iter()
            .filter(|(from, _)| senders.contains(from))
            .collect();
        Self::random_from_edges(seed, edges, horizon, count)
    }

    fn random_from_edges(
        seed: u64,
        edges: Vec<(NodeId, NodeId)>,
        horizon: u32,
        count: usize,
    ) -> Self {
        let mut plan = FaultPlan::new(seed);
        if edges.is_empty() || horizon == 0 {
            return plan;
        }
        for i in 0..count {
            let h = |k: u64| mix64(seed ^ 0xFA17 ^ ((i as u64) << 16) ^ k);
            let (from, to) = edges[(h(1) % edges.len() as u64) as usize];
            let start = (h(2) % u64::from(horizon)) as u32;
            let len = 1 + (h(3) % u64::from(horizon)) as u32;
            let action = match h(4) % 4 {
                0 => FaultAction::Drop,
                1 => FaultAction::Corrupt,
                2 => FaultAction::Equivocate,
                _ => FaultAction::Delay(1 + (h(5) % 3) as u32),
            };
            let to = if action == FaultAction::Equivocate {
                None
            } else {
                Some(to)
            };
            plan = plan.with_rule(FaultRule {
                from,
                to,
                from_tick: start,
                until_tick: start.saturating_add(len),
                action,
            });
        }
        plan
    }

    /// The rules of the plan.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// The seed driving corruption and equivocation bytes.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Composes two plans: the result carries `self`'s seed and the
    /// concatenated rule lists. Because per-tick action precedence is fixed
    /// and several delays resolve to the minimum (see the module docs),
    /// `a.merge(&b)` and `b.merge(&a)` inject identically whenever the two
    /// plans share a seed.
    pub fn merge(mut self, other: &FaultPlan) -> Self {
        self.rules.extend(other.rules.iter().cloned());
        self
    }

    /// The plan without rule `index` — the shrinker's "delete one fault"
    /// move. Out-of-range indices return the plan unchanged.
    pub fn without_rule(mut self, index: usize) -> Self {
        if index < self.rules.len() {
            self.rules.remove(index);
        }
        self
    }

    /// The plan restricted to edges that exist in `g`: rules naming an edge
    /// absent from `g` (or an out-of-range node) are dropped. Used when a
    /// shrink candidate rebuilds a smaller graph and the surviving rules
    /// must still make sense on it.
    pub fn restricted_to(mut self, g: &Graph) -> Self {
        let n = g.node_count();
        self.rules.retain(|r| {
            if r.from.index() >= n {
                return false;
            }
            match r.to {
                Some(w) => w.index() < n && g.has_link(r.from, w),
                None => g.degree(r.from) > 0,
            }
        });
        self
    }

    /// The nodes the plan injects faults at — the set a test must budget as
    /// faulty when checking agreement conditions.
    pub fn faulty_nodes(&self) -> BTreeSet<NodeId> {
        self.rules.iter().map(|r| r.from).collect()
    }

    /// The injector for node `v`, if any rule names it as sender.
    pub fn injector(&self, v: NodeId) -> Option<FaultInjector> {
        let rules: Vec<FaultRule> = self.rules.iter().filter(|r| r.from == v).cloned().collect();
        if rules.is_empty() {
            None
        } else {
            Some(FaultInjector {
                seed: self.seed,
                rules,
                ports: Vec::new(),
                delayed: Vec::new(),
            })
        }
    }

    /// Wraps `device` with this plan's injector for node `v`; devices at
    /// nodes the plan does not touch are returned unchanged.
    pub fn wrap(&self, v: NodeId, device: Box<dyn Device>) -> Box<dyn Device> {
        match self.injector(v) {
            Some(injector) => Box::new(FaultedDevice {
                inner: device,
                injector,
            }),
            None => device,
        }
    }
}

/// Applies one node's [`FaultRule`]s to its outbound payloads, tick by tick.
///
/// Actions are applied in a fixed order each tick — equivocate, corrupt,
/// drop, delay-capture, then delivery of due delayed payloads — so a plan
/// with several rules on one edge has a well-defined, documented outcome.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rules: Vec<FaultRule>,
    ports: Vec<NodeId>,
    delayed: Vec<VecDeque<(u32, Payload)>>,
}

impl FaultInjector {
    /// Binds the injector to the sender's port list (its sorted neighbors).
    pub fn bind(&mut self, ports: &[NodeId]) {
        self.ports = ports.to_vec();
        self.delayed = vec![VecDeque::new(); ports.len()];
    }

    fn active<'a>(&'a self, t: Tick, action_is: impl Fn(&FaultAction) -> bool + 'a) -> Vec<usize> {
        let mut hit = Vec::new();
        for (p, &to) in self.ports.iter().enumerate() {
            if self
                .rules
                .iter()
                .any(|r| action_is(&r.action) && r.applies(t, to))
            {
                hit.push(p);
            }
        }
        hit
    }

    /// Transforms the payloads a device produced at tick `t`.
    pub fn transform(&mut self, t: Tick, mut out: Vec<Option<Payload>>) -> Vec<Option<Payload>> {
        debug_assert_eq!(out.len(), self.ports.len(), "injector not bound");
        // Equivocate: every matched port gets the first non-silent output,
        // tagged with a per-port salt so recipients see conflicting bytes.
        let equivocating = self.active(t, |a| *a == FaultAction::Equivocate);
        if !equivocating.is_empty() {
            let base: Payload = out.iter().flatten().next().cloned().unwrap_or_default();
            for p in equivocating {
                // Payloads are immutable (shared bytes): copy out, salt,
                // rewrap.
                let mut m = base.to_vec();
                m.push(mix64(self.seed ^ u64::from(self.ports[p].0) ^ u64::from(t.0)) as u8);
                out[p] = Some(m.into());
            }
        }
        // Corrupt: XOR with a keystream keyed on (seed, edge, tick).
        for p in self.active(t, |a| *a == FaultAction::Corrupt) {
            if let Some(m) = &mut out[p] {
                let key = self.seed ^ (u64::from(self.ports[p].0) << 32) ^ u64::from(t.0);
                let mut bytes = m.to_vec();
                for (i, b) in bytes.iter_mut().enumerate() {
                    *b ^= mix64(key ^ (i as u64)) as u8;
                }
                *m = bytes.into();
            }
        }
        // Drop: silence.
        for p in self.active(t, |a| *a == FaultAction::Drop) {
            out[p] = None;
        }
        // Delay: capture matched payloads into the port's queue. When
        // several delay rules match the same edge this tick, the minimum
        // wins — a set, not a list, of rules decides, so merged plans
        // compose rule-order-independently.
        for (p, &to) in self.ports.iter().enumerate() {
            let delay = self
                .rules
                .iter()
                .filter_map(|r| match r.action {
                    FaultAction::Delay(d) if r.applies(t, to) => Some(d),
                    _ => None,
                })
                .min();
            match delay {
                Some(d) => {
                    if let Some(m) = out[p].take() {
                        self.delayed[p].push_back((t.0.saturating_add(d), m));
                    }
                }
                // Port idle: deliver the earliest due delayed payload.
                None if out[p].is_none()
                    && self.delayed[p].front().is_some_and(|&(due, _)| due <= t.0) =>
                {
                    let (_, m) = self.delayed[p]
                        .pop_front()
                        .expect("front element checked due just above");
                    out[p] = Some(m);
                }
                None => {}
            }
        }
        out
    }
}

/// A device with a [`FaultInjector`] bolted onto its outputs.
struct FaultedDevice {
    inner: Box<dyn Device>,
    injector: FaultInjector,
}

impl Device for FaultedDevice {
    fn name(&self) -> &'static str {
        "Faulted"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.inner.init(ctx);
        self.injector.bind(&ctx.ports);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let out = self.inner.step(t, inbox);
        self.injector.transform(t, out)
    }

    fn snapshot(&self) -> Vec<u8> {
        self.inner.snapshot()
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(FaultedDevice {
            inner: self.inner.fork()?,
            injector: self.injector.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Input;
    use crate::devices::NaiveMajorityDevice;
    use crate::system::System;
    use flm_graph::builders;

    fn broadcaster() -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }

    fn run_plan(plan: &FaultPlan, horizon: u32) -> crate::SystemBehavior {
        let g = builders::triangle();
        let mut sys = System::new(g);
        for v in sys.graph().nodes() {
            sys.assign(v, plan.wrap(v, broadcaster()), Input::Bool(v.0 == 0));
        }
        sys.run(horizon)
    }

    #[test]
    fn drop_silences_the_edge_in_the_window() {
        let plan = FaultPlan::new(7).drop_edge(NodeId(0), NodeId(1), 0, 2);
        let b = run_plan(&plan, 3);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], None);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[1], None);
        // Outside the window and on other edges, traffic flows.
        assert!(b.edge(NodeId(0), NodeId(2))[0].is_some());
    }

    #[test]
    fn corrupt_changes_bytes_but_not_silence() {
        let clean = run_plan(&FaultPlan::new(7), 2);
        let plan = FaultPlan::new(7).corrupt_edge(NodeId(0), NodeId(1), 0, 2);
        let b = run_plan(&plan, 2);
        let before = clean.edge(NodeId(0), NodeId(1));
        let after = b.edge(NodeId(0), NodeId(1));
        assert_eq!(before[0].is_some(), after[0].is_some());
        assert_ne!(before[0], after[0]);
    }

    #[test]
    fn equivocate_sends_conflicting_copies() {
        let plan = FaultPlan::new(7).equivocate(NodeId(0), 0, 1);
        let b = run_plan(&plan, 1);
        let to1 = b.edge(NodeId(0), NodeId(1))[0].clone().unwrap();
        let to2 = b.edge(NodeId(0), NodeId(2))[0].clone().unwrap();
        assert_ne!(to1, to2, "equivocation must differ across ports");
        // Both derive from the same base payload.
        assert_eq!(to1[..to1.len() - 1], to2[..to2.len() - 1]);
    }

    #[test]
    fn delay_shifts_payloads_later() {
        let plan = FaultPlan::new(7).delay_edge(NodeId(0), NodeId(1), 0, 1, 2);
        let b = run_plan(&plan, 4);
        let clean = run_plan(&FaultPlan::new(7), 4);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], None);
        // The tick-0 payload reappears once the port is idle and the delay
        // has elapsed.
        let held = clean.edge(NodeId(0), NodeId(1))[0].clone();
        assert!(b.edge(NodeId(0), NodeId(1)).contains(&held));
    }

    #[test]
    fn plans_are_deterministic() {
        let plan = FaultPlan::random(99, &builders::triangle(), 4, 6);
        assert_eq!(plan, FaultPlan::random(99, &builders::triangle(), 4, 6));
        let (a, b) = (run_plan(&plan, 4), run_plan(&plan, 4));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn wrap_composes_with_the_adversary_zoo() {
        use crate::adversary::RandomAdversary;
        let plan = FaultPlan::new(3).drop_edge(NodeId(0), NodeId(1), 0, 8);
        let mut sys = System::new(builders::triangle());
        sys.assign(
            NodeId(0),
            plan.wrap(NodeId(0), Box::new(RandomAdversary::new(5))),
            Input::None,
        );
        sys.assign(NodeId(1), broadcaster(), Input::Bool(true));
        sys.assign(NodeId(2), broadcaster(), Input::Bool(false));
        let b = sys.run(8);
        // The plan mutes the adversary toward node 1 but not node 2.
        assert!(b.edge(NodeId(0), NodeId(1)).iter().all(|m| m.is_none()));
        assert!(b.edge(NodeId(0), NodeId(2)).iter().any(|m| m.is_some()));
    }

    #[test]
    fn faulty_nodes_lists_senders() {
        let plan = FaultPlan::new(0)
            .drop_edge(NodeId(2), NodeId(0), 0, 1)
            .equivocate(NodeId(1), 0, 3);
        let nodes: Vec<NodeId> = plan.faulty_nodes().into_iter().collect();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
    }
}
