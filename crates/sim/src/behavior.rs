//! Behaviors and scenarios: the observables of the FLM model.
//!
//! A *system behavior* (§2) is a tuple containing a behavior for every node
//! and edge. Here a node behavior is its per-tick snapshot trace (plus its
//! device name and input, which the paper carries in the system assignment),
//! and an edge behavior is the per-tick payload trace on one directed edge.
//!
//! A *scenario* is the restriction of a system behavior to a subgraph: the
//! node behaviors inside, the internal edge behaviors, and the inedge-border
//! behaviors. The Locality axiom says scenarios with identical devices,
//! inputs, and inedge borders are identical — and the refuters exploit
//! exactly that, matching scenarios extracted from a covering-graph run
//! against scenarios of correct base-graph runs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use flm_graph::{Graph, NodeId};

use crate::device::{snapshot, Decision, Input, Payload};
use crate::Tick;

/// The trace of one directed edge: the payload sent at each tick (`None` is
/// observable silence).
pub type EdgeBehavior = Vec<Option<Payload>>;

/// How a device violated its contract during a contained run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MisbehaviorKind {
    /// The device panicked inside `step`; the payload is the panic message.
    Panic(String),
    /// The device returned the wrong number of outputs from `step`.
    PortMismatch {
        /// Number of ports the device was wired to.
        expected: usize,
        /// Number of outputs it actually returned.
        got: usize,
    },
    /// The device emitted a payload larger than the run policy allows.
    OversizedPayload {
        /// Index of the offending port.
        port: usize,
        /// Size of the payload in bytes.
        len: usize,
        /// The policy's per-payload limit.
        limit: usize,
    },
}

impl fmt::Display for MisbehaviorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisbehaviorKind::Panic(msg) => write!(f, "panicked: {msg}"),
            MisbehaviorKind::PortMismatch { expected, got } => {
                write!(f, "returned {got} outputs for {expected} ports")
            }
            MisbehaviorKind::OversizedPayload { port, len, limit } => {
                write!(f, "sent {len} B on port {port} (limit {limit} B)")
            }
        }
    }
}

/// One recorded incident from a contained run: a node stepped outside its
/// contract at a tick. The run loop quarantines the node (silent, frozen
/// snapshot) from the incident on, so misbehavior never propagates — it is
/// *evidence*, available to degradation policies that reclassify the node
/// as Byzantine-faulty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceMisbehavior {
    /// The misbehaving node.
    pub node: NodeId,
    /// The tick of the first incident.
    pub tick: Tick,
    /// What the device did.
    pub kind: MisbehaviorKind,
}

impl fmt::Display for DeviceMisbehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at tick {}: {}", self.node, self.tick.0, self.kind)
    }
}

impl DeviceMisbehavior {
    /// Appends this incident to a wire writer: node, tick, then the kind as
    /// a tag byte plus its fields (`usize` fields travel as `u64`).
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        w.u32(self.node.0).u32(self.tick.0);
        match &self.kind {
            MisbehaviorKind::Panic(msg) => {
                w.u8(0).str(msg);
            }
            MisbehaviorKind::PortMismatch { expected, got } => {
                w.u8(1).u64(*expected as u64).u64(*got as u64);
            }
            MisbehaviorKind::OversizedPayload { port, len, limit } => {
                w.u8(2)
                    .u64(*port as u64)
                    .u64(*len as u64)
                    .u64(*limit as u64);
            }
        }
    }

    /// Reads an incident written by [`DeviceMisbehavior::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation, an unknown kind
    /// tag, or a field that does not fit in `usize`.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        let node = NodeId(r.u32()?);
        let tick = Tick(r.u32()?);
        let to_usize = |v: u64| usize::try_from(v).map_err(|_| crate::wire::DecodeError);
        let kind = match r.u8()? {
            0 => MisbehaviorKind::Panic(r.str()?.to_owned()),
            1 => MisbehaviorKind::PortMismatch {
                expected: to_usize(r.u64()?)?,
                got: to_usize(r.u64()?)?,
            },
            2 => MisbehaviorKind::OversizedPayload {
                port: to_usize(r.u64()?)?,
                len: to_usize(r.u64()?)?,
                limit: to_usize(r.u64()?)?,
            },
            _ => return Err(crate::wire::DecodeError),
        };
        Ok(DeviceMisbehavior { node, tick, kind })
    }
}

/// Appends an edge trace to a wire writer: tick count, then each tick's
/// payload as `0` (silence) or `1` plus the length-prefixed bytes.
pub fn encode_edge_behavior(trace: &EdgeBehavior, w: &mut crate::wire::Writer) {
    w.u32(trace.len() as u32);
    for payload in trace {
        match payload {
            None => {
                w.u8(0);
            }
            Some(p) => {
                w.u8(1).bytes(p);
            }
        }
    }
}

/// Reads an edge trace written by [`encode_edge_behavior`].
///
/// # Errors
///
/// Returns [`crate::wire::DecodeError`] on truncation, an unknown tag, or a
/// tick count that exceeds the bytes actually present (each tick encodes to
/// at least one byte, so the count is checked against
/// [`crate::wire::Reader::remaining`] before any allocation).
pub fn decode_edge_behavior(
    r: &mut crate::wire::Reader<'_>,
) -> Result<EdgeBehavior, crate::wire::DecodeError> {
    let ticks = r.u32()? as usize;
    if ticks > r.remaining() {
        return Err(crate::wire::DecodeError);
    }
    let mut trace = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        trace.push(match r.u8()? {
            0 => None,
            1 => Some(Payload::from(r.bytes()?)),
            _ => return Err(crate::wire::DecodeError),
        });
    }
    Ok(trace)
}

/// The behavior of a single node: its device, input, and snapshot trace.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBehavior {
    /// The name of the device the node ran.
    pub device_name: String,
    /// The input assigned to the node.
    pub input: Input,
    /// Snapshot after each tick, indexed by tick.
    pub snaps: Vec<Vec<u8>>,
}

impl NodeBehavior {
    /// The node's decision: the one in the earliest decided snapshot.
    ///
    /// This is the paper's `CHOOSE` — a pure function of the behavior.
    pub fn decision(&self) -> Option<Decision> {
        self.snaps.iter().find_map(|s| snapshot::decision_in(s))
    }

    /// The tick of the earliest decided snapshot.
    pub fn decision_tick(&self) -> Option<Tick> {
        self.snaps
            .iter()
            .position(|s| snapshot::decision_in(s).is_some())
            .map(|i| Tick(i as u32))
    }

    /// The tick at which the node first entered the FIRE state, if ever.
    pub fn fire_tick(&self) -> Option<Tick> {
        self.snaps
            .iter()
            .position(|s| s.first() == Some(&snapshot::FIRE))
            .map(|i| Tick(i as u32))
    }

    /// The prefix of this behavior through tick `t` inclusive.
    pub fn prefix(&self, t: Tick) -> NodeBehavior {
        NodeBehavior {
            device_name: self.device_name.clone(),
            input: self.input,
            snaps: self.snaps[..self.snaps.len().min(t.index() + 1)].to_vec(),
        }
    }
}

/// The complete behavior of one system run.
///
/// The graph is held behind an `Arc`, so cloning a behavior (or the system
/// handing its graph to the behavior at the end of a run) never copies the
/// adjacency structure.
#[derive(Debug, Clone)]
pub struct SystemBehavior {
    graph: Arc<Graph>,
    nodes: Vec<NodeBehavior>,
    edges: BTreeMap<(NodeId, NodeId), EdgeBehavior>,
    horizon: u32,
    misbehavior: Vec<DeviceMisbehavior>,
}

impl SystemBehavior {
    pub(crate) fn new(
        graph: Arc<Graph>,
        nodes: Vec<NodeBehavior>,
        edges: BTreeMap<(NodeId, NodeId), EdgeBehavior>,
        horizon: u32,
        misbehavior: Vec<DeviceMisbehavior>,
    ) -> Self {
        SystemBehavior {
            graph,
            nodes,
            edges,
            horizon,
            misbehavior,
        }
    }

    /// The communication graph the system ran on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of ticks the system ran for.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The behavior of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the graph.
    pub fn node(&self, v: NodeId) -> &NodeBehavior {
        &self.nodes[v.index()]
    }

    /// The behavior of the directed edge `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not an edge of the graph.
    pub fn edge(&self, u: NodeId, v: NodeId) -> &EdgeBehavior {
        self.edges
            .get(&(u, v))
            .unwrap_or_else(|| panic!("({u}, {v}) is not an edge of the graph"))
    }

    /// All directed edge behaviors.
    pub fn edges(&self) -> &BTreeMap<(NodeId, NodeId), EdgeBehavior> {
        &self.edges
    }

    /// Extracts the scenario of the subgraph induced by `set`.
    pub fn scenario(&self, set: &BTreeSet<NodeId>) -> Scenario {
        let mut nodes = BTreeMap::new();
        for &v in set {
            nodes.insert(v, self.nodes[v.index()].clone());
        }
        let mut internal = BTreeMap::new();
        for (u, v) in self.graph.internal_edges(set) {
            internal.insert((u, v), self.edges[&(u, v)].clone());
        }
        let mut border = BTreeMap::new();
        for (u, v) in self.graph.inedge_border(set) {
            border.insert((u, v), self.edges[&(u, v)].clone());
        }
        Scenario {
            nodes,
            internal,
            border,
        }
    }

    /// Renders a human-readable tick-by-tick timeline of the run: per tick,
    /// the non-silent edge payloads (hex, truncated) and every node's
    /// decision status. Intended for certificate inspection and debugging.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in 0..self.horizon as usize {
            let _ = writeln!(out, "tick {t}");
            for ((u, v), trace) in &self.edges {
                if let Some(Some(m)) = trace.get(t) {
                    let hex: String = m.iter().take(8).map(|b| format!("{b:02x}")).collect();
                    let ellipsis = if m.len() > 8 { "…" } else { "" };
                    let _ = writeln!(out, "  {u} → {v}: {hex}{ellipsis} ({} B)", m.len());
                }
            }
            for v in self.graph.nodes() {
                let nb = &self.nodes[v.index()];
                if nb.decision_tick() == Some(Tick(t as u32)) {
                    let _ = writeln!(out, "  {v} decides {:?}", nb.decision());
                }
            }
        }
        out
    }

    /// Incidents recorded by a contained run ([`crate::System::run_contained`]);
    /// empty for strict runs. At most one per node — the run loop quarantines
    /// a node at its first incident.
    pub fn misbehavior(&self) -> &[DeviceMisbehavior] {
        &self.misbehavior
    }

    /// The nodes that misbehaved during the run.
    pub fn misbehaving_nodes(&self) -> BTreeSet<NodeId> {
        self.misbehavior.iter().map(|m| m.node).collect()
    }

    /// Approximate heap footprint of this behavior in bytes (snapshots,
    /// device names, and edge payloads). The run cache uses it for its
    /// byte-savings counter and its size bound — an estimate, not an exact
    /// allocator account.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for nb in &self.nodes {
            total += nb.device_name.len() as u64;
            total += nb.snaps.iter().map(|s| s.len() as u64 + 8).sum::<u64>();
        }
        for trace in self.edges.values() {
            for payload in trace {
                total += payload.as_ref().map_or(1, |m| m.len() as u64 + 8);
            }
        }
        total
    }

    /// Decisions of all nodes, by node id.
    pub fn decisions(&self) -> Vec<(NodeId, Option<Decision>)> {
        self.graph
            .nodes()
            .map(|v| (v, self.nodes[v.index()].decision()))
            .collect()
    }
}

/// The restriction of a system behavior to a subgraph (FLM §2).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Behaviors of the nodes inside the subgraph.
    pub nodes: BTreeMap<NodeId, NodeBehavior>,
    /// Behaviors of edges with both endpoints inside.
    pub internal: BTreeMap<(NodeId, NodeId), EdgeBehavior>,
    /// Behaviors of the inedge border: edges from outside into the subgraph.
    pub border: BTreeMap<(NodeId, NodeId), EdgeBehavior>,
}

impl Scenario {
    /// Checks that this scenario is identical to `other` under the node
    /// renaming `map` (self node → other node). Border edges are matched by
    /// their *target* node and source renaming where given; border sources
    /// absent from `map` are matched positionally among the sorted border
    /// edges into the same target.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch, intended
    /// for counterexample certificates and axiom-check diagnostics.
    pub fn matches(&self, other: &Scenario, map: &BTreeMap<NodeId, NodeId>) -> Result<(), String> {
        if self.nodes.len() != other.nodes.len() {
            return Err(format!(
                "scenario has {} nodes, other has {}",
                self.nodes.len(),
                other.nodes.len()
            ));
        }
        for (&v, nb) in &self.nodes {
            let w = *map
                .get(&v)
                .ok_or_else(|| format!("node {v} missing from renaming"))?;
            let ob = other
                .nodes
                .get(&w)
                .ok_or_else(|| format!("node {w} missing from other scenario"))?;
            if nb.device_name != ob.device_name {
                return Err(format!(
                    "{v}→{w}: device {} vs {}",
                    nb.device_name, ob.device_name
                ));
            }
            if nb.input != ob.input {
                return Err(format!("{v}→{w}: input {} vs {}", nb.input, ob.input));
            }
            if nb.snaps != ob.snaps {
                let t = nb
                    .snaps
                    .iter()
                    .zip(&ob.snaps)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| nb.snaps.len().min(ob.snaps.len()));
                return Err(format!("{v}→{w}: snapshots diverge at tick {t}"));
            }
        }
        // Internal edges: renamed endpoint-for-endpoint.
        for (&(u, v), eb) in &self.internal {
            let (u2, v2) = (map[&u], map[&v]);
            let ob = other
                .internal
                .get(&(u2, v2))
                .ok_or_else(|| format!("internal edge ({u2}, {v2}) missing"))?;
            if eb != ob {
                return Err(format!("internal edge ({u}, {v})→({u2}, {v2}) differs"));
            }
        }
        if self.internal.len() != other.internal.len() {
            return Err("internal edge sets differ in size".into());
        }
        // Border edges: group by renamed target, compare sorted traces.
        let group = |edges: &BTreeMap<(NodeId, NodeId), EdgeBehavior>,
                     rename: bool|
         -> BTreeMap<NodeId, Vec<EdgeBehavior>> {
            let mut g: BTreeMap<NodeId, Vec<EdgeBehavior>> = BTreeMap::new();
            for (&(src, dst), eb) in edges {
                let key = if rename { map[&dst] } else { dst };
                let _ = src;
                g.entry(key).or_default().push(eb.clone());
            }
            for v in g.values_mut() {
                v.sort();
            }
            g
        };
        let mine = group(&self.border, true);
        let theirs = group(&other.border, false);
        if mine != theirs {
            return Err("inedge border behaviors differ".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(name: &str, input: Input, snaps: Vec<Vec<u8>>) -> NodeBehavior {
        NodeBehavior {
            device_name: name.into(),
            input,
            snaps,
        }
    }

    #[test]
    fn decision_reads_earliest_decided_snapshot() {
        let b = nb(
            "D",
            Input::Bool(true),
            vec![
                snapshot::undecided(b""),
                snapshot::decided_bool(false, b""),
                snapshot::decided_bool(true, b""),
            ],
        );
        assert_eq!(b.decision(), Some(Decision::Bool(false)));
        assert_eq!(b.decision_tick(), Some(Tick(1)));
    }

    #[test]
    fn fire_tick_finds_first_fire() {
        let b = nb(
            "F",
            Input::None,
            vec![
                snapshot::undecided(b""),
                snapshot::fire(b""),
                snapshot::fire(b""),
            ],
        );
        assert_eq!(b.fire_tick(), Some(Tick(1)));
        assert_eq!(b.decision(), Some(Decision::Fire));
    }

    #[test]
    fn prefix_truncates() {
        let b = nb("D", Input::None, vec![vec![0], vec![0, 1], vec![0, 2]]);
        assert_eq!(b.prefix(Tick(1)).snaps.len(), 2);
        assert_eq!(b.prefix(Tick(9)).snaps.len(), 3);
    }

    #[test]
    fn scenario_matching_detects_divergence() {
        let mk = |snap_last: u8| {
            let mut nodes = BTreeMap::new();
            nodes.insert(
                NodeId(0),
                nb("D", Input::Bool(false), vec![vec![0], vec![0, snap_last]]),
            );
            Scenario {
                nodes,
                internal: BTreeMap::new(),
                border: BTreeMap::new(),
            }
        };
        let map: BTreeMap<NodeId, NodeId> = [(NodeId(0), NodeId(0))].into();
        assert!(mk(1).matches(&mk(1), &map).is_ok());
        let err = mk(1).matches(&mk(2), &map).unwrap_err();
        assert!(err.contains("diverge at tick 1"), "{err}");
    }

    #[test]
    fn scenario_matching_renames_nodes() {
        let scn = |id: u32| {
            let mut nodes = BTreeMap::new();
            nodes.insert(NodeId(id), nb("D", Input::None, vec![vec![0]]));
            Scenario {
                nodes,
                internal: BTreeMap::new(),
                border: BTreeMap::new(),
            }
        };
        let map: BTreeMap<NodeId, NodeId> = [(NodeId(3), NodeId(7))].into();
        assert!(scn(3).matches(&scn(7), &map).is_ok());
    }
}
