//! Continuous-time simulation for clock synchronization (§7).
//!
//! Nodes here have *hardware clocks*: increasing invertible functions of
//! real time ([`TimeFn`]). The paper's key modeling assumption is that
//! devices have **no way to observe real time other than their hardware
//! clock** — every time-dependent aspect of the system is a function of
//! clock states. This module enforces that structurally:
//!
//! * a [`ClockDevice`] is only ever told its current *hardware* clock
//!   reading, never real time;
//! * timers are set in hardware-clock units;
//! * transmission delay is one unit of the **sender's hardware clock** — a
//!   function of clock states, as required.
//!
//! Under these rules the **Scaling axiom** holds by construction: replacing
//! every clock `D` by `D ∘ h` replays the identical device-event sequence at
//! real times mapped through `h⁻¹` (`flm-core::axioms` verifies this on
//! concrete runs).

mod timefn;

pub use timefn::TimeFn;

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};

use crate::device::Payload;

/// An occurrence a clock device reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum ClockEvent {
    /// The system started (delivered to every node at real time 0).
    Start,
    /// A message arrived on `port`.
    Message {
        /// The receiving port.
        port: usize,
        /// The payload.
        payload: Payload,
    },
    /// A timer set earlier by this device expired.
    Timer {
        /// The id the device chose when setting the timer.
        id: u32,
    },
}

impl ClockEvent {
    /// Canonical encoding for behavior logs.
    fn encode(&self) -> Vec<u8> {
        use crate::wire::Writer;
        let mut w = Writer::new();
        match self {
            ClockEvent::Start => {
                w.u8(0);
            }
            ClockEvent::Message { port, payload } => {
                w.u8(1).u32(*port as u32).bytes(payload);
            }
            ClockEvent::Timer { id } => {
                w.u8(2).u32(*id);
            }
        }
        w.finish()
    }
}

/// An action a clock device takes in response to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ClockAction {
    /// Send `payload` on `port` now. It arrives one unit of the sender's
    /// hardware clock later.
    Send {
        /// The sending port.
        port: usize,
        /// The payload.
        payload: Payload,
    },
    /// Send `payload` on `port` with a **sender-chosen** delay of
    /// `hw_delay` units of the sender's hardware clock (any positive
    /// value, arbitrarily small).
    ///
    /// This action deliberately *breaks the Bounded-Delay Locality axiom*:
    /// with it, information can outrun any fixed per-hop bound. It exists
    /// to reproduce the paper's §4 sensitivity remark — weak agreement and
    /// the firing squad become solvable when transmission delay has no
    /// positive lower bound (see `flm-protocols`' fast weak agreement) —
    /// and must not be used by devices subject to Theorems 2 and 4.
    SendWithDelay {
        /// The sending port.
        port: usize,
        /// The payload.
        payload: Payload,
        /// Hardware-clock delay; must be positive (may be tiny).
        hw_delay: f64,
    },
    /// Wake up `hw_delay` units of the local hardware clock from now.
    SetTimer {
        /// Identifier echoed back in [`ClockEvent::Timer`].
        id: u32,
        /// Hardware-clock delay; must be positive.
        hw_delay: f64,
    },
}

/// A deterministic event-driven device that can observe time only through
/// its hardware clock.
pub trait ClockDevice {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Called once before the run with the number of ports.
    fn init(&mut self, ports: usize);

    /// Reacts to `event` at hardware-clock reading `hw`.
    fn on_event(&mut self, hw: f64, event: ClockEvent) -> Vec<ClockAction>;

    /// The logical clock value as a function of the current state and the
    /// hardware-clock reading — the paper's `C_i(E_i(t))`.
    fn logical(&self, hw: f64) -> f64;

    /// Canonical snapshot of the device state (for behavior comparison).
    fn snapshot(&self) -> Vec<u8>;
}

/// One recorded transmission on a directed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct SendRecord {
    /// Real time the message left the sender.
    pub sent: f64,
    /// Real time it arrived at the receiver.
    pub arrived: f64,
    /// The payload.
    pub payload: Payload,
}

/// One entry in a node's event log.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Real time of the event.
    pub time: f64,
    /// Canonical encoding of the event.
    pub kind: Vec<u8>,
    /// Device snapshot after handling it.
    pub snap: Vec<u8>,
}

/// The recorded behavior of a clock-system run.
#[derive(Debug, Clone)]
pub struct ClockBehavior {
    graph: Graph,
    /// The probe times that were sampled, in increasing order.
    pub probes: Vec<f64>,
    /// `logical[i][v]` = node `v`'s logical clock at probe `i`.
    pub logical: Vec<Vec<f64>>,
    /// Message records per directed edge.
    pub sends: BTreeMap<(NodeId, NodeId), Vec<SendRecord>>,
    /// Per-node event logs.
    pub node_logs: Vec<Vec<EventRecord>>,
}

impl ClockBehavior {
    /// The graph the system ran on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Logical clock of `v` at probe index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `v` is out of range.
    pub fn logical_at(&self, i: usize, v: NodeId) -> f64 {
        self.logical[i][v.index()]
    }

    /// The send records of the directed edge `(u, v)` (empty if no messages
    /// were sent on it).
    pub fn edge_sends(&self, u: NodeId, v: NodeId) -> &[SendRecord] {
        self.sends.get(&(u, v)).map_or(&[], Vec::as_slice)
    }

    /// Approximate heap footprint in bytes (probes, logical-clock tables,
    /// send records, and event logs); see
    /// [`crate::behavior::SystemBehavior::approx_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        let mut total = (self.probes.len() as u64) * 8;
        total += self
            .logical
            .iter()
            .map(|row| row.len() as u64 * 8)
            .sum::<u64>();
        for records in self.sends.values() {
            total += records
                .iter()
                .map(|r| 16 + r.payload.len() as u64 + 8)
                .sum::<u64>();
        }
        for log in &self.node_logs {
            total += log
                .iter()
                .map(|e| 8 + (e.kind.len() + e.snap.len()) as u64)
                .sum::<u64>();
        }
        total
    }
}

struct ClockSlot {
    device: Box<dyn ClockDevice>,
    clock: TimeFn,
    wiring: Vec<NodeId>,
}

/// A graph with a clock device and a hardware clock at every node.
pub struct ClockSystem {
    graph: Graph,
    slots: Vec<Option<ClockSlot>>,
}

/// Queue entry ordered by (time, sequence).
struct QueuedEvent {
    time: f64,
    seq: u64,
    node: NodeId,
    event: ClockEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ClockSystem {
    /// Creates a clock system over `graph` with nothing assigned yet.
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        ClockSystem {
            graph,
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Assigns `device` with hardware clock `clock` to node `v`, ports wired
    /// to `v`'s sorted neighbors.
    pub fn assign(&mut self, v: NodeId, mut device: Box<dyn ClockDevice>, clock: TimeFn) {
        let wiring: Vec<NodeId> = self.graph.neighbors(v).collect();
        device.init(wiring.len());
        self.slots[v.index()] = Some(ClockSlot {
            device,
            clock,
            wiring,
        });
    }

    /// Assigns a device to cover node `s`, wiring ports along the covering's
    /// edge lifts (port order = sorted base neighbors of φ(s)).
    ///
    /// # Panics
    ///
    /// Panics if this system's graph is not the covering's cover graph.
    pub fn assign_lifted(
        &mut self,
        cov: &Covering,
        s: NodeId,
        mut device: Box<dyn ClockDevice>,
        clock: TimeFn,
    ) {
        assert_eq!(
            &self.graph,
            cov.cover(),
            "system graph must be the covering's cover graph"
        );
        let base = cov.project(s);
        let wiring: Vec<NodeId> = cov
            .base()
            .neighbors(base)
            .map(|t| cov.lift_neighbor(s, t))
            .collect();
        device.init(wiring.len());
        self.slots[s.index()] = Some(ClockSlot {
            device,
            clock,
            wiring,
        });
    }

    /// Runs until real time `horizon`, sampling every node's logical clock
    /// at each time in `probes` (which must be sorted increasing and lie
    /// within `[0, horizon]`).
    ///
    /// # Panics
    ///
    /// Panics if any node is unassigned, probes are unsorted, or a device
    /// sets a non-positive timer.
    pub fn run(mut self, horizon: f64, probes: &[f64]) -> ClockBehavior {
        let n = self.graph.node_count();
        for v in self.graph.nodes() {
            assert!(self.slots[v.index()].is_some(), "no device assigned to {v}");
        }
        assert!(
            probes.windows(2).all(|w| w[0] <= w[1]),
            "probes must be sorted"
        );

        let mut queue = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        for v in self.graph.nodes() {
            queue.push(QueuedEvent {
                time: 0.0,
                seq,
                node: v,
                event: ClockEvent::Start,
            });
            seq += 1;
        }

        let mut sends: BTreeMap<(NodeId, NodeId), Vec<SendRecord>> = BTreeMap::new();
        let mut node_logs: Vec<Vec<EventRecord>> = vec![Vec::new(); n];
        let mut logical: Vec<Vec<f64>> = Vec::with_capacity(probes.len());
        let mut probe_idx = 0;

        let sample_all = |slots: &[Option<ClockSlot>], t: f64, out: &mut Vec<Vec<f64>>| {
            let row = slots
                .iter()
                .map(|s| {
                    let s = s
                        .as_ref()
                        .expect("clock runs start only after every node is assigned");
                    s.device.logical(s.clock.eval(t))
                })
                .collect();
            out.push(row);
        };

        while let Some(ev) = queue.pop() {
            if ev.time > horizon {
                break;
            }
            // Sample probes that fall strictly before this event.
            while probe_idx < probes.len() && probes[probe_idx] < ev.time {
                sample_all(&self.slots, probes[probe_idx], &mut logical);
                probe_idx += 1;
            }
            let v = ev.node;
            // Compute everything needing the slot immutably first.
            let (hw, actions) = {
                let slot = self.slots[v.index()]
                    .as_mut()
                    .expect("clock runs start only after every node is assigned");
                let hw = slot.clock.eval(ev.time);
                let actions = slot.device.on_event(hw, ev.event.clone());
                (hw, actions)
            };
            let slot = self.slots[v.index()]
                .as_ref()
                .expect("clock runs start only after every node is assigned");
            node_logs[v.index()].push(EventRecord {
                time: ev.time,
                kind: ev.event.encode(),
                snap: slot.device.snapshot(),
            });
            for action in actions {
                // Normalize the two send forms to (port, payload, delay).
                let send = match action {
                    ClockAction::Send { port, payload } => Some((port, payload, 1.0)),
                    ClockAction::SendWithDelay {
                        port,
                        payload,
                        hw_delay,
                    } => {
                        assert!(
                            hw_delay > 0.0,
                            "send delay must be positive, got {hw_delay}"
                        );
                        Some((port, payload, hw_delay))
                    }
                    ClockAction::SetTimer { id, hw_delay } => {
                        assert!(
                            hw_delay > 0.0,
                            "timer delay must be positive, got {hw_delay}"
                        );
                        let target = slot.clock.eval_inverse(hw + hw_delay);
                        queue.push(QueuedEvent {
                            time: target,
                            seq,
                            node: v,
                            event: ClockEvent::Timer { id },
                        });
                        seq += 1;
                        None
                    }
                };
                if let Some((port, payload, delay)) = send {
                    let w = slot.wiring[port];
                    let arrival = slot.clock.eval_inverse(hw + delay);
                    debug_assert!(arrival > ev.time, "clocks must increase");
                    sends.entry((v, w)).or_default().push(SendRecord {
                        sent: ev.time,
                        arrived: arrival,
                        payload: payload.clone(),
                    });
                    // The receiver's port index for this physical edge.
                    let recv_slot = self.slots[w.index()]
                        .as_ref()
                        .expect("clock runs start only after every node is assigned");
                    let rport =
                        recv_slot.wiring.iter().position(|&x| x == v).expect(
                            "graph edges are symmetric, so the receiver wires the sender back",
                        );
                    queue.push(QueuedEvent {
                        time: arrival,
                        seq,
                        node: w,
                        event: ClockEvent::Message {
                            port: rport,
                            payload,
                        },
                    });
                    seq += 1;
                }
            }
        }
        // Remaining probes (after the last event).
        while probe_idx < probes.len() && probes[probe_idx] <= horizon {
            sample_all(&self.slots, probes[probe_idx], &mut logical);
            probe_idx += 1;
        }

        ClockBehavior {
            graph: self.graph,
            probes: probes[..probe_idx].to_vec(),
            logical,
            sends,
            node_logs,
        }
    }
}

impl fmt::Debug for ClockSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockSystem(n={}, assigned={})",
            self.graph.node_count(),
            self.slots.iter().filter(|s| s.is_some()).count()
        )
    }
}

/// The Fault axiom in clock land: a faulty device that reproduces prescribed
/// *arrival times* (in real time) on each outedge.
///
/// Given its own hardware clock and the desired arrival schedule, the
/// constructor works out when (in hardware time) to hand each message to the
/// link so that it lands exactly on schedule under the one-hardware-unit
/// transmission delay.
pub struct ClockReplayDevice {
    /// Per timer id: (port, payload) to send when it fires.
    planned: Vec<(usize, Payload)>,
    /// Per timer id: hardware time at which to send.
    hw_times: Vec<f64>,
}

impl ClockReplayDevice {
    /// Plans a replay for a node whose hardware clock is `own_clock`:
    /// `arrivals[p]` lists `(real_arrival_time, payload)` for port `p`.
    ///
    /// # Panics
    ///
    /// Panics if any arrival is scheduled earlier than one hardware unit
    /// after the start (physically unreachable).
    pub fn for_arrivals(own_clock: &TimeFn, arrivals: &[Vec<(f64, Payload)>]) -> Self {
        let start_hw = own_clock.eval(0.0);
        let mut planned = Vec::new();
        let mut hw_times = Vec::new();
        for (port, list) in arrivals.iter().enumerate() {
            for (arrive, payload) in list {
                let hw_send = own_clock.eval(*arrive) - 1.0;
                assert!(
                    hw_send > start_hw,
                    "arrival at {arrive} is unreachable for this clock"
                );
                planned.push((port, payload.clone()));
                hw_times.push(hw_send);
            }
        }
        ClockReplayDevice { planned, hw_times }
    }
}

impl ClockDevice for ClockReplayDevice {
    fn name(&self) -> &'static str {
        "F"
    }

    fn init(&mut self, _ports: usize) {}

    fn on_event(&mut self, hw: f64, event: ClockEvent) -> Vec<ClockAction> {
        match event {
            ClockEvent::Start => self
                .hw_times
                .iter()
                .enumerate()
                .map(|(i, &t)| ClockAction::SetTimer {
                    id: i as u32,
                    hw_delay: t - hw,
                })
                .collect(),
            ClockEvent::Timer { id } => {
                let (port, payload) = self.planned[id as usize].clone();
                vec![ClockAction::Send { port, payload }]
            }
            ClockEvent::Message { .. } => Vec::new(),
        }
    }

    fn logical(&self, _hw: f64) -> f64 {
        0.0 // a faulty node's logical clock is unconstrained
    }

    fn snapshot(&self) -> Vec<u8> {
        b"replay".to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    /// Logical clock = hardware clock; pings every 2 hw units.
    struct Ping {
        pings: u32,
        heard: u32,
    }

    impl ClockDevice for Ping {
        fn name(&self) -> &'static str {
            "Ping"
        }
        fn init(&mut self, _ports: usize) {}
        fn on_event(&mut self, _hw: f64, event: ClockEvent) -> Vec<ClockAction> {
            match event {
                ClockEvent::Start | ClockEvent::Timer { .. } => {
                    self.pings += 1;
                    vec![
                        ClockAction::Send {
                            port: 0,
                            payload: vec![self.pings as u8].into(),
                        },
                        ClockAction::SetTimer {
                            id: 0,
                            hw_delay: 2.0,
                        },
                    ]
                }
                ClockEvent::Message { .. } => {
                    self.heard += 1;
                    Vec::new()
                }
            }
        }
        fn logical(&self, hw: f64) -> f64 {
            hw
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.pings as u8, self.heard as u8]
        }
    }

    fn ping() -> Box<dyn ClockDevice> {
        Box::new(Ping { pings: 0, heard: 0 })
    }

    #[test]
    fn messages_take_one_sender_hw_unit() {
        let g = builders::path(2);
        let mut sys = ClockSystem::new(g);
        // Node 0 runs at double speed: its hw unit is 0.5 real time.
        sys.assign(NodeId(0), ping(), TimeFn::linear(2.0));
        sys.assign(NodeId(1), ping(), TimeFn::identity());
        let b = sys.run(10.0, &[]);
        let fast = b.edge_sends(NodeId(0), NodeId(1));
        assert!(!fast.is_empty());
        for s in fast {
            assert!((s.arrived - s.sent - 0.5).abs() < 1e-12);
        }
        let slow = b.edge_sends(NodeId(1), NodeId(0));
        for s in slow {
            assert!((s.arrived - s.sent - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn probes_sample_logical_clocks() {
        let g = builders::path(2);
        let mut sys = ClockSystem::new(g);
        sys.assign(NodeId(0), ping(), TimeFn::linear(2.0));
        sys.assign(NodeId(1), ping(), TimeFn::identity());
        let b = sys.run(5.0, &[1.0, 4.0]);
        assert_eq!(b.probes, vec![1.0, 4.0]);
        assert_eq!(b.logical_at(0, NodeId(0)), 2.0); // hw = 2t
        assert_eq!(b.logical_at(0, NodeId(1)), 1.0);
        assert_eq!(b.logical_at(1, NodeId(0)), 8.0);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sys = ClockSystem::new(builders::path(2));
            sys.assign(NodeId(0), ping(), TimeFn::linear(1.5));
            sys.assign(NodeId(1), ping(), TimeFn::identity());
            sys.run(8.0, &[2.0, 6.0])
        };
        let (a, b) = (run(), run());
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.logical, b.logical);
        assert_eq!(a.node_logs, b.node_logs);
    }

    #[test]
    fn scaling_axiom_on_a_concrete_run() {
        // Behavior of the scaled system = scaled behavior: run with clocks
        // (D₀, D₁) and with (D₀∘h, D₁∘h); event real times map through h⁻¹.
        let h = TimeFn::linear(2.0);
        let run = |scale: bool| {
            let mk = |c: TimeFn| if scale { c.compose(&h) } else { c };
            let mut sys = ClockSystem::new(builders::path(2));
            sys.assign(NodeId(0), ping(), mk(TimeFn::linear(3.0)));
            sys.assign(NodeId(1), ping(), mk(TimeFn::identity()));
            // Horizon in real time shrinks by h⁻¹ when clocks speed up.
            let horizon = if scale { 6.0 } else { 12.0 };
            sys.run(horizon, &[])
        };
        let plain = run(false);
        let scaled = run(true);
        for (edge, recs) in &plain.sends {
            let srecs = &scaled.sends[edge];
            assert_eq!(recs.len(), srecs.len());
            for (r, s) in recs.iter().zip(srecs) {
                assert!((h.eval(s.sent) - r.sent).abs() < 1e-9);
                assert!((h.eval(s.arrived) - r.arrived).abs() < 1e-9);
                assert_eq!(r.payload, s.payload);
            }
        }
    }

    #[test]
    fn replay_hits_prescribed_arrivals() {
        let g = builders::path(2);
        let clock = TimeFn::linear(2.0);
        let replay = ClockReplayDevice::for_arrivals(
            &clock,
            &[vec![(1.0, vec![7].into()), (3.5, vec![8].into())]],
        );
        let mut sys = ClockSystem::new(g);
        sys.assign(NodeId(0), Box::new(replay), clock);
        sys.assign(NodeId(1), ping(), TimeFn::identity());
        let b = sys.run(5.0, &[]);
        let recs = b.edge_sends(NodeId(0), NodeId(1));
        assert_eq!(recs.len(), 2);
        assert!((recs[0].arrived - 1.0).abs() < 1e-9);
        assert_eq!(recs[0].payload, vec![7].into());
        assert!((recs[1].arrived - 3.5).abs() < 1e-9);
    }
}
