//! Invertible increasing functions of time: hardware clocks, envelopes, and
//! the scaling maps `h = p⁻¹ ∘ q` of §7.

use std::fmt;

/// A monotonically increasing function of time, closed under composition,
/// inversion, and iteration.
///
/// Hardware clocks (`p`, `q`), envelope functions (`l`, `u`), and scaling
/// maps (`h`, `h^k`, `h^{-k}`) are all values of this type. Affine cases
/// evaluate in closed form; everything else falls back to monotone
/// bisection for inverses.
///
/// # Example
///
/// ```
/// use flm_sim::clock::TimeFn;
///
/// let p = TimeFn::identity();          // p(t) = t
/// let q = TimeFn::linear(2.0);         // q(t) = 2t
/// let h = p.inverse().compose(&q);     // h = p⁻¹∘q = 2t
/// assert_eq!(h.eval(3.0), 6.0);
/// assert_eq!(h.iterate(3).eval(1.0), 8.0);  // h³(1) = 8
/// assert!((h.inverse().eval(8.0) - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub enum TimeFn {
    /// `t ↦ rate·t + offset`, with `rate > 0`.
    Affine {
        /// The slope (must be positive).
        rate: f64,
        /// The intercept.
        offset: f64,
    },
    /// `t ↦ log₂(1 + t)` — increasing and invertible on `[0, ∞)`.
    Log2,
    /// `f.compose(g)`: `t ↦ f(g(t))`.
    Compose(Box<TimeFn>, Box<TimeFn>),
    /// The inverse of an increasing function.
    Inverse(Box<TimeFn>),
}

impl TimeFn {
    /// The identity `t ↦ t`.
    pub fn identity() -> TimeFn {
        TimeFn::Affine {
            rate: 1.0,
            offset: 0.0,
        }
    }

    /// The linear clock `t ↦ rate·t`.
    ///
    /// # Panics
    ///
    /// Panics if `rate ≤ 0`.
    pub fn linear(rate: f64) -> TimeFn {
        TimeFn::affine(rate, 0.0)
    }

    /// The affine clock `t ↦ rate·t + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `rate ≤ 0` — clocks must increase.
    pub fn affine(rate: f64, offset: f64) -> TimeFn {
        assert!(rate > 0.0, "clock rate must be positive, got {rate}");
        TimeFn::Affine { rate, offset }
    }

    /// Maximum `Compose`/`Inverse` nesting depth [`TimeFn::decode`] accepts.
    ///
    /// Refuter-built functions are shallow (a handful of compositions); the
    /// cap exists so a hostile certificate cannot make the decoder recurse
    /// unboundedly. Encoding has no cap — anything encodable in practice is
    /// far below it.
    pub const MAX_DECODE_DEPTH: u32 = 64;

    /// Appends this function to a wire writer: a tag byte per constructor
    /// (`0` affine, `1` log₂, `2` compose, `3` inverse), affine parameters
    /// as raw IEEE-754 bit patterns.
    pub fn encode(&self, w: &mut crate::wire::Writer) {
        match self {
            TimeFn::Affine { rate, offset } => {
                w.u8(0).u64(rate.to_bits()).u64(offset.to_bits());
            }
            TimeFn::Log2 => {
                w.u8(1);
            }
            TimeFn::Compose(f, g) => {
                w.u8(2);
                f.encode(w);
                g.encode(w);
            }
            TimeFn::Inverse(f) => {
                w.u8(3);
                f.encode(w);
            }
        }
    }

    /// Reads a function written by [`TimeFn::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::wire::DecodeError`] on truncation, an unknown tag,
    /// nesting deeper than [`TimeFn::MAX_DECODE_DEPTH`], or affine
    /// parameters that violate the type's invariant (the rate must be
    /// positive and finite, the offset finite) — hostile bytes must not
    /// construct a value [`TimeFn::affine`] would have panicked on.
    pub fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Self, crate::wire::DecodeError> {
        Self::decode_at_depth(r, 0)
    }

    fn decode_at_depth(
        r: &mut crate::wire::Reader<'_>,
        depth: u32,
    ) -> Result<Self, crate::wire::DecodeError> {
        if depth > Self::MAX_DECODE_DEPTH {
            return Err(crate::wire::DecodeError);
        }
        match r.u8()? {
            0 => {
                let rate = f64::from_bits(r.u64()?);
                let offset = f64::from_bits(r.u64()?);
                if !(rate.is_finite() && rate > 0.0 && offset.is_finite()) {
                    return Err(crate::wire::DecodeError);
                }
                Ok(TimeFn::Affine { rate, offset })
            }
            1 => Ok(TimeFn::Log2),
            2 => {
                let f = Self::decode_at_depth(r, depth + 1)?;
                let g = Self::decode_at_depth(r, depth + 1)?;
                Ok(TimeFn::Compose(Box::new(f), Box::new(g)))
            }
            3 => Ok(TimeFn::Inverse(Box::new(Self::decode_at_depth(
                r,
                depth + 1,
            )?))),
            _ => Err(crate::wire::DecodeError),
        }
    }

    /// Evaluates the function at `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            TimeFn::Affine { rate, offset } => rate * t + offset,
            TimeFn::Log2 => (1.0 + t).log2(),
            TimeFn::Compose(f, g) => f.eval(g.eval(t)),
            TimeFn::Inverse(f) => f.eval_inverse(t),
        }
    }

    /// Evaluates the inverse at `v`: the `t` with `self(t) = v`.
    ///
    /// Affine and `Log2` invert in closed form; compositions invert
    /// recursively; anything else uses monotone bisection (the function is
    /// increasing by construction).
    pub fn eval_inverse(&self, v: f64) -> f64 {
        match self {
            TimeFn::Affine { rate, offset } => (v - offset) / rate,
            TimeFn::Log2 => v.exp2() - 1.0,
            TimeFn::Compose(f, g) => g.eval_inverse(f.eval_inverse(v)),
            TimeFn::Inverse(f) => f.eval(v),
        }
    }

    /// The composition `self ∘ inner`: `t ↦ self(inner(t))`. Affine pairs
    /// are folded in closed form so that long iterates stay exact.
    pub fn compose(&self, inner: &TimeFn) -> TimeFn {
        match (self, inner) {
            (TimeFn::Affine { rate: a, offset: b }, TimeFn::Affine { rate: c, offset: d }) => {
                TimeFn::Affine {
                    rate: a * c,
                    offset: a * d + b,
                }
            }
            _ => TimeFn::Compose(Box::new(self.clone()), Box::new(inner.clone())),
        }
    }

    /// The inverse function. Affine functions invert in closed form.
    pub fn inverse(&self) -> TimeFn {
        match self {
            TimeFn::Affine { rate, offset } => TimeFn::Affine {
                rate: 1.0 / rate,
                offset: -offset / rate,
            },
            TimeFn::Inverse(f) => (**f).clone(),
            _ => TimeFn::Inverse(Box::new(self.clone())),
        }
    }

    /// The `k`-fold iterate `self^k` (`k = 0` is the identity; negative
    /// iteration via `self.inverse().iterate(k)`).
    pub fn iterate(&self, k: usize) -> TimeFn {
        let mut acc = TimeFn::identity();
        for _ in 0..k {
            acc = self.compose(&acc);
        }
        acc
    }
}

impl fmt::Debug for TimeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeFn::Affine { rate, offset } => {
                if *offset == 0.0 {
                    write!(f, "{rate}·t")
                } else {
                    write!(f, "{rate}·t{offset:+}")
                }
            }
            TimeFn::Log2 => write!(f, "log2(1+t)"),
            TimeFn::Compose(a, b) => write!(f, "({a:?})∘({b:?})"),
            TimeFn::Inverse(a) => write!(f, "({a:?})⁻¹"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn affine_eval_and_inverse() {
        let f = TimeFn::affine(3.0, 1.0);
        assert_eq!(f.eval(2.0), 7.0);
        assert_eq!(f.eval_inverse(7.0), 2.0);
        assert!(close(f.inverse().eval(7.0), 2.0));
    }

    #[test]
    fn log2_round_trips() {
        let f = TimeFn::Log2;
        assert!(close(f.eval_inverse(f.eval(5.0)), 5.0));
        assert_eq!(f.eval(0.0), 0.0);
    }

    #[test]
    fn composition_folds_affine() {
        let f = TimeFn::affine(2.0, 1.0);
        let g = TimeFn::affine(3.0, -1.0);
        let fg = f.compose(&g);
        assert!(matches!(fg, TimeFn::Affine { .. }));
        assert_eq!(fg.eval(1.0), f.eval(g.eval(1.0)));
    }

    #[test]
    fn general_composition_and_inverse() {
        // f = log2 ∘ (2t): not affine; inverse must still round-trip.
        let f = TimeFn::Log2.compose(&TimeFn::linear(2.0));
        for t in [0.1, 1.0, 7.5] {
            assert!(close(f.eval_inverse(f.eval(t)), t));
            assert!(close(f.inverse().eval(f.eval(t)), t));
        }
    }

    #[test]
    fn iterate_matches_repeated_eval() {
        let h = TimeFn::linear(2.0);
        assert_eq!(h.iterate(0).eval(5.0), 5.0);
        assert_eq!(h.iterate(4).eval(1.0), 16.0);
        let hinv = h.inverse().iterate(4);
        assert_eq!(hinv.eval(16.0), 1.0);
    }

    #[test]
    fn scaling_map_h_from_p_q() {
        // p(t)=t, q(t)=rt ⇒ h = p⁻¹∘q = rt; h(t) ≥ t for r ≥ 1.
        let p = TimeFn::identity();
        let q = TimeFn::linear(1.5);
        let h = p.inverse().compose(&q);
        for t in [0.0, 1.0, 10.0] {
            assert!(h.eval(t) >= t);
        }
        // p(t)=t, q(t)=t+c ⇒ h(t) = t + c.
        let q2 = TimeFn::affine(1.0, 2.0);
        let h2 = p.inverse().compose(&q2);
        assert_eq!(h2.eval(3.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn nonpositive_rate_is_rejected() {
        TimeFn::linear(0.0);
    }
}
