//! The Fault axiom as code.
//!
//! FLM §2's Fault axiom: for any device `A` and any edge behaviors
//! `E₁, …, E_d` that `A` exhibits on its outedges in (possibly different)
//! system behaviors, there is a device `F_A(E₁, …, E_d)` that exhibits
//! `E_i` on its `i`-th outedge in *any* system. [`ReplayDevice`] is that
//! device: it plays back recorded edge traces verbatim, ignoring everything
//! it receives. This is the "powerful masquerading capability of failed
//! devices" every refuter uses to transplant covering-graph scenarios into
//! correct behaviors of the base graph.

use crate::behavior::EdgeBehavior;
use crate::device::{snapshot, Device, NodeCtx, Payload};
use crate::Tick;

/// A faulty device that replays prerecorded outedge behaviors.
///
/// # Example
///
/// ```
/// use flm_sim::replay::ReplayDevice;
/// use flm_sim::device::{Device, NodeCtx, Input};
/// use flm_sim::Tick;
/// use flm_graph::NodeId;
///
/// // Replay "7" then silence on a single port.
/// let mut f = ReplayDevice::masquerade(vec![vec![Some(vec![7].into()), None]]);
/// f.init(&NodeCtx { node: NodeId(0), ports: vec![NodeId(1)], input: Input::None });
/// assert_eq!(f.step(Tick(0), &[None]), vec![Some(vec![7].into())]);
/// assert_eq!(f.step(Tick(1), &[Some(vec![9].into())]), vec![None]);
/// assert_eq!(f.step(Tick(2), &[None]), vec![None]); // past the recording
/// ```
#[derive(Debug, Clone)]
pub struct ReplayDevice {
    /// `traces[p]` = the edge behavior to exhibit on port `p`.
    traces: Vec<EdgeBehavior>,
}

impl ReplayDevice {
    /// Builds `F_A(E₁, …, E_d)` from the recorded outedge behaviors, one per
    /// port. Ticks beyond the end of a recording are silent.
    pub fn masquerade(traces: Vec<EdgeBehavior>) -> Self {
        ReplayDevice { traces }
    }

    /// Number of ports this device was recorded for.
    pub fn port_count(&self) -> usize {
        self.traces.len()
    }
}

impl Device for ReplayDevice {
    fn name(&self) -> &'static str {
        "F" // the paper's name for the masquerading device
    }

    fn init(&mut self, ctx: &NodeCtx) {
        assert_eq!(
            ctx.ports.len(),
            self.traces.len(),
            "replay device recorded for {} ports installed at a node with {}",
            self.traces.len(),
            ctx.ports.len()
        );
    }

    fn step(&mut self, t: Tick, _inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        self.traces
            .iter()
            .map(|trace| trace.get(t.index()).cloned().flatten())
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        // The behavior of a faulty node never participates in scenario
        // comparison; a constant marker keeps it honest anyway.
        snapshot::undecided(b"replay")
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        // Stateless: `step` reads only the tick index, so a clone at any
        // tick behaves identically to the original from that tick on.
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Input;
    use crate::system::System;
    use flm_graph::{builders, NodeId};

    /// Device that forwards everything it hears on port 0 back out on all
    /// ports, and snapshots the concatenation of everything heard.
    struct Parrot {
        heard: Vec<u8>,
    }

    impl Device for Parrot {
        fn name(&self) -> &'static str {
            "Parrot"
        }
        fn init(&mut self, _ctx: &NodeCtx) {}
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            for m in inbox.iter().flatten() {
                self.heard.extend_from_slice(m);
            }
            inbox.iter().map(|_| None).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::undecided(&self.heard)
        }
    }

    #[test]
    fn fault_axiom_replays_exactly() {
        // Record an arbitrary trace, install it at a faulty node, and check
        // the neighbor observes exactly the recorded edge behavior.
        let recorded: EdgeBehavior = vec![Some(vec![1].into()), None, Some(vec![2, 3].into())];
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(ReplayDevice::masquerade(vec![recorded.clone()])),
            Input::None,
        );
        sys.assign(NodeId(1), Box::new(Parrot { heard: vec![] }), Input::None);
        let b = sys.run(4);
        assert_eq!(&b.edge(NodeId(0), NodeId(1))[..3], &recorded[..]);
        // Sent at ticks 0 and 2, heard one tick later each.
        assert_eq!(b.node(NodeId(1)).snaps[1], snapshot::undecided(&[1]));
        assert_eq!(b.node(NodeId(1)).snaps[3], snapshot::undecided(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "recorded for 1 ports")]
    fn port_count_mismatch_panics() {
        let g = builders::triangle();
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(ReplayDevice::masquerade(vec![vec![None]])),
            Input::None,
        );
    }
}
