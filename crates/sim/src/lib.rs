//! Deterministic timed message-passing simulator realizing the FLM model.
//!
//! The paper's model (§2) is deliberately minimal: systems are communication
//! graphs with a *device* and an *input* at each node; a system has exactly
//! one behavior; and everything rests on two axioms:
//!
//! * **Locality** — a subsystem's behavior is determined by its devices,
//!   inputs, and inedge-border behaviors. Here this holds *structurally*:
//!   the simulator steps each device only on its own state and inbox.
//! * **Fault** — a faulty node can exhibit, on each outedge, any behavior
//!   some device exhibits on that edge in *some* system behavior. Here this
//!   is [`replay::ReplayDevice`]: a device that plays back recorded edge
//!   traces verbatim, realizing the paper's `F_A(E₁, …, E_d)`.
//!
//! Two further axioms gate the later theorems and also hold structurally:
//!
//! * **Bounded-Delay Locality** (§4) — information needs at least δ time per
//!   hop. The simulator delivers every message exactly one tick after it is
//!   sent, so δ = 1.
//! * **Scaling** (§7) — uniformly rescaling all hardware clocks rescales the
//!   behavior. The [`clock`] sub-simulator runs devices that can observe
//!   time *only* through their hardware clock, so scaled systems produce
//!   scaled behaviors by construction.
//!
//! The discrete-tick simulator ([`system::System`]) hosts the Byzantine /
//! weak / firing-squad / approximate-agreement machinery; the event-driven
//! continuous-time simulator ([`clock`]) hosts clock synchronization.
//!
//! # Example
//!
//! ```
//! use flm_graph::builders;
//! use flm_sim::device::{Decision, Input};
//! use flm_sim::system::System;
//! use flm_sim::devices::ConstantDevice;
//!
//! // Three nodes that immediately decide their own input.
//! let g = builders::triangle();
//! let mut sys = System::new(g);
//! for v in sys.graph().nodes() {
//!     sys.assign(v, Box::new(ConstantDevice::new()), Input::Bool(true));
//! }
//! let behavior = sys.run(3);
//! for v in behavior.graph().nodes() {
//!     assert_eq!(behavior.node(v).decision(), Some(Decision::Bool(true)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod async_sched;
pub mod auth;
pub mod behavior;
pub mod campaign;
pub mod clock;
pub mod device;
pub mod devices;
pub mod faults;
pub(crate) mod kernel;
pub mod prefixcache;
pub mod protocol;
pub mod replay;
pub mod runcache;
pub mod system;
pub mod time;
pub mod wire;

pub use behavior::{
    DeviceMisbehavior, EdgeBehavior, MisbehaviorKind, NodeBehavior, Scenario, SystemBehavior,
};
pub use device::{Decision, Device, Input, NodeCtx, Payload};
pub use faults::{FaultAction, FaultPlan, FaultRule};
pub use protocol::{ClockProtocol, Protocol};
pub use system::{contain_panics, RunPolicy, RunScratch, System};
pub use time::Tick;
