//! The structure-of-arrays run kernel behind [`crate::System`].
//!
//! [`run`] is the single tick loop every discrete-system execution goes
//! through (strict and contained). All per-run state lives in flat,
//! time-major slabs rather than per-edge / per-node nested vectors:
//!
//! * `traces` — one `Option<Payload>` slot per directed edge per tick,
//!   indexed `t * E + e` in `Graph::directed_edges` (lex) order;
//! * `delivered` — a per-tick bitmask over edge indices, so refilling the
//!   inboxes skips the payload slab entirely for silent edges;
//! * `snap_bytes` / `snap_ends` — an arena of device snapshots with
//!   cumulative end offsets, one entry per node per tick;
//! * the port tables (`RunScratch`) — flat in/out edge-index arrays with a
//!   per-node prefix-sum offset table, and one flat inbox buffer.
//!
//! The payoff is that a mid-run snapshot ([`TickSnapshot`]) is a handful of
//! slab prefix clones (`Option<Payload>` clones are refcount bumps) plus a
//! [`Device::fork`] per live node — which is what makes the run-prefix trie
//! ([`crate::prefixcache`]) cheap enough to capture speculatively. The
//! pre-existing `System::run_reference` map-per-delivery loop is untouched
//! and remains the differential oracle for this kernel.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use flm_graph::{Graph, NodeId};

use crate::behavior::{DeviceMisbehavior, MisbehaviorKind, NodeBehavior, SystemBehavior};
use crate::device::{snapshot, Device, Payload};
use crate::system::{RunPolicy, RunScratch, Slot, SystemError};
use crate::Tick;

/// A forkable mid-run state capture at a tick boundary: everything the
/// kernel needs to resume a run at tick `tick` as if it had executed ticks
/// `0..tick` itself.
///
/// Slab fields hold the time-major prefixes for the completed ticks;
/// `devices[v]` holds a [`Device::fork`] of node `v`'s device, or `None`
/// for nodes whose device need not (scripted replay nodes, whose outputs
/// the prefix key pins per tick) or cannot (quarantined nodes, whose state
/// may be poisoned) be restored — on resume those keep the freshly
/// assembled system's device, which is sound because a scripted device's
/// `step` reads only the tick index and a quarantined node is never
/// stepped again.
pub struct TickSnapshot {
    tick: u32,
    e_count: u32,
    n: u32,
    traces: Vec<Option<Payload>>,
    delivered: Vec<u64>,
    snap_bytes: Vec<u8>,
    snap_ends: Vec<u32>,
    quarantined: Vec<bool>,
    misbehavior: Vec<DeviceMisbehavior>,
    devices: Vec<Option<Box<dyn Device>>>,
}

impl TickSnapshot {
    /// The tick boundary this snapshot was captured at.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// Approximate retained bytes, for the prefix cache's byte bound.
    pub fn approx_bytes(&self) -> usize {
        let payloads: usize = self
            .traces
            .iter()
            .flatten()
            .map(|p| p.len() + std::mem::size_of::<Payload>())
            .sum();
        payloads
            + self.snap_bytes.len()
            + self.snap_ends.len() * 4
            + self.delivered.len() * 8
            + self.traces.len()
            + self.n as usize * 64
    }

    /// A shape-degenerate snapshot for store-level tests that must never
    /// reach the kernel (probe rejection paths).
    #[cfg(test)]
    pub(crate) fn empty_for_tests(tick: u32) -> TickSnapshot {
        TickSnapshot {
            tick,
            e_count: 0,
            n: 0,
            traces: Vec::new(),
            delivered: Vec::new(),
            snap_bytes: Vec::new(),
            snap_ends: Vec::new(),
            quarantined: Vec::new(),
            misbehavior: Vec::new(),
            devices: Vec::new(),
        }
    }

    /// An independent copy that a run can consume while `self` stays in the
    /// cache. `None` if any stored device refuses to fork (cannot happen
    /// for devices that forked once already, but surfaced rather than
    /// asserted).
    pub fn fork(&self) -> Option<TickSnapshot> {
        let devices = self
            .devices
            .iter()
            .map(|d| match d {
                None => Some(None),
                Some(d) => d.fork().map(Some),
            })
            .collect::<Option<Vec<_>>>()?;
        Some(TickSnapshot {
            tick: self.tick,
            e_count: self.e_count,
            n: self.n,
            traces: self.traces.clone(),
            delivered: self.delivered.clone(),
            snap_bytes: self.snap_bytes.clone(),
            snap_ends: self.snap_ends.clone(),
            quarantined: self.quarantined.clone(),
            misbehavior: self.misbehavior.clone(),
            devices,
        })
    }
}

/// Which tick boundaries to capture and which nodes are scripted.
pub(crate) struct CaptureSpec<'a> {
    /// Ascending tick boundaries to snapshot at; a snapshot at `t` holds
    /// the state after ticks `0..t`.
    pub at: &'a [u32],
    /// `scripted[v]` — node `v`'s outputs are pinned per tick by the prefix
    /// key (a replay device), so its device is neither forked nor restored.
    pub scripted: &'a [bool],
}

fn words_for(e_count: usize) -> usize {
    e_count.div_ceil(64)
}

/// The SoA tick loop. `resume` continues from a forked [`TickSnapshot`]
/// instead of tick 0; `capture` requests snapshots at the given boundaries
/// (silently skipped once any live device refuses to fork).
///
/// Byte-identical to the pre-SoA loop on every observable: trace order,
/// snapshot bytes, misbehavior ordering (tick-major, node-ascending),
/// quarantine semantics, and every error path.
pub(crate) fn run(
    graph: &Arc<Graph>,
    slots: &mut [Option<Slot>],
    horizon: u32,
    policy: Option<&RunPolicy>,
    scratch: &mut RunScratch,
    resume: Option<TickSnapshot>,
    capture: Option<&CaptureSpec<'_>>,
) -> Result<(SystemBehavior, Vec<TickSnapshot>), SystemError> {
    let n = graph.node_count();
    for v in graph.nodes() {
        if slots[v.index()].is_none() {
            return Err(SystemError::Unassigned { node: v });
        }
    }
    if policy.is_some() {
        crate::system::install_quiet_panic_hook();
    }
    // Port resolution: every port of every node is resolved to its receive
    // and send edge index (lex position in `directed_edges`) once, into
    // flat arrays indexed by `port_off[v] + p`. Resolution can only fail
    // for a wiring that is not a bijection onto the node's neighbors,
    // which `assign`/`assign_wired` already reject — the error path keeps
    // that invariant structural for slots assembled some other way.
    let edge_list = graph.directed_edges();
    let e_count = edge_list.len();
    let words = words_for(e_count);
    scratch.port_off.clear();
    scratch.port_off.push(0);
    scratch.in_edges.clear();
    scratch.out_edges.clear();
    for v in graph.nodes() {
        let slot = slots[v.index()]
            .as_ref()
            .expect("run is only reached after every node is assigned");
        for &w in slot.wiring() {
            let bad_wire = |_| SystemError::BadWiring {
                node: v,
                reason: format!("port wired to {w}, which is not a neighbor of {v}"),
            };
            scratch
                .in_edges
                .push(edge_list.binary_search(&(w, v)).map_err(bad_wire)? as u32);
            scratch
                .out_edges
                .push(edge_list.binary_search(&(v, w)).map_err(bad_wire)? as u32);
        }
        scratch.port_off.push(scratch.in_edges.len() as u32);
    }
    let port_off = &scratch.port_off;
    let in_edges = &scratch.in_edges;
    let out_edges = &scratch.out_edges;
    scratch.inbox.clear();
    scratch.inbox.resize(in_edges.len(), None);
    let inbox = &mut scratch.inbox;
    scratch.quarantined.clear();
    scratch.quarantined.resize(n, false);
    let quarantined = &mut scratch.quarantined;

    // Time-major slabs; outputs, so always freshly allocated.
    let mut traces: Vec<Option<Payload>> = Vec::with_capacity(horizon as usize * e_count);
    let mut delivered: Vec<u64> = Vec::with_capacity(horizon as usize * words);
    let mut snap_bytes: Vec<u8> = Vec::new();
    let mut snap_ends: Vec<u32> = Vec::with_capacity(horizon as usize * n);
    let mut misbehavior: Vec<DeviceMisbehavior> = Vec::new();

    // Resuming replays the stored prefix as if this kernel had executed it:
    // slab prefixes are adopted wholesale, forked devices replace the
    // freshly assembled ones, and the tick loop starts at the boundary.
    let start = match resume {
        None => 0,
        Some(snap) => {
            assert_eq!(
                (snap.n, snap.e_count),
                (n as u32, e_count as u32),
                "tick snapshot shape does not match this system"
            );
            assert!(snap.tick <= horizon, "tick snapshot is past the horizon");
            traces = snap.traces;
            delivered = snap.delivered;
            snap_bytes = snap.snap_bytes;
            snap_ends = snap.snap_ends;
            quarantined.copy_from_slice(&snap.quarantined);
            misbehavior = snap.misbehavior;
            for (slot, device) in slots.iter_mut().zip(snap.devices) {
                if let Some(device) = device {
                    slot.as_mut()
                        .expect("run is only reached after every node is assigned")
                        .device = device;
                }
            }
            snap.tick
        }
    };

    let mut captures: Vec<TickSnapshot> = Vec::new();
    let mut capture_at: &[u32] = capture.map_or(&[], |c| c.at);
    while capture_at.first().is_some_and(|&b| b <= start) {
        capture_at = &capture_at[1..];
    }
    let mut capture_dead = false;

    for t in start..horizon {
        let tick = Tick(t);
        // Refill the flat inbox from last tick's slab row. The delivery
        // bitmask keeps silent edges off the payload slab entirely.
        if t > 0 {
            let row = &traces[(t as usize - 1) * e_count..t as usize * e_count];
            let mask = &delivered[(t as usize - 1) * words..t as usize * words];
            for (cell, &e) in inbox.iter_mut().zip(in_edges.iter()) {
                let e = e as usize;
                *cell = if mask[e >> 6] & (1 << (e & 63)) != 0 {
                    row[e].clone()
                } else {
                    None
                };
            }
        }
        // This tick's slab row.
        traces.resize(traces.len() + e_count, None);
        delivered.resize(delivered.len() + words, 0);
        let row = &mut traces[t as usize * e_count..];
        let mask = &mut delivered[t as usize * words..];
        // Step devices and record sends + snapshots.
        for v in graph.nodes() {
            let slot = slots[v.index()]
                .as_mut()
                .expect("run is only reached after every node is assigned");
            let off = port_off[v.index()] as usize;
            let ports = port_off[v.index() + 1] as usize - off;
            let node_inbox = &inbox[off..off + ports];
            let mut incident: Option<MisbehaviorKind> = None;
            let out: Vec<Option<Payload>> = if quarantined[v.index()] {
                vec![None; ports]
            } else {
                let stepped = match policy {
                    None => Ok(slot.device.step(tick, node_inbox)),
                    Some(_) => {
                        let device = &mut slot.device;
                        crate::system::CONTAINING.with(|c| c.set(true));
                        let result =
                            panic::catch_unwind(AssertUnwindSafe(|| device.step(tick, node_inbox)));
                        crate::system::CONTAINING.with(|c| c.set(false));
                        result.map_err(|p| MisbehaviorKind::Panic(crate::system::panic_message(p)))
                    }
                };
                match stepped {
                    Ok(out) if out.len() != ports => {
                        let kind = MisbehaviorKind::PortMismatch {
                            expected: ports,
                            got: out.len(),
                        };
                        if policy.is_none() {
                            return Err(SystemError::PortMismatch {
                                node: v,
                                expected: ports,
                                got: out.len(),
                            });
                        }
                        incident = Some(kind);
                        vec![None; ports]
                    }
                    Ok(out) => {
                        let oversized = policy.and_then(|p| {
                            out.iter().enumerate().find_map(|(port, m)| {
                                m.as_ref()
                                    .filter(|m| m.len() > p.max_payload_bytes)
                                    .map(|m| MisbehaviorKind::OversizedPayload {
                                        port,
                                        len: m.len(),
                                        limit: p.max_payload_bytes,
                                    })
                            })
                        });
                        match oversized {
                            Some(kind) => {
                                incident = Some(kind);
                                vec![None; ports]
                            }
                            None => out,
                        }
                    }
                    Err(kind) => {
                        incident = Some(kind);
                        vec![None; ports]
                    }
                }
            };
            if let Some(kind) = incident {
                misbehavior.push(DeviceMisbehavior {
                    node: v,
                    tick,
                    kind,
                });
                quarantined[v.index()] = true;
            }
            // Sends land in this tick's slab row; `out_edges` was fully
            // resolved before the loop, so every port has an edge by
            // construction.
            for (p, payload) in out.into_iter().enumerate() {
                let e = out_edges[off + p] as usize;
                if payload.is_some() {
                    mask[e >> 6] |= 1 << (e & 63);
                }
                row[e] = payload;
            }
            // A quarantined device is never touched again — its state may
            // be poisoned mid-panic, so the marker stands in for it.
            let snap = if quarantined[v.index()] {
                snapshot::undecided(b"quarantined")
            } else {
                slot.device.snapshot()
            };
            snap_bytes.extend_from_slice(&snap);
            snap_ends.push(snap_bytes.len() as u32);
        }
        // Capture at the boundary after this tick: slab prefix clones plus
        // one fork per live, unscripted device. A device that refuses to
        // fork disables capture for the rest of the run (never the run
        // itself).
        if !capture_dead && capture_at.first() == Some(&(t + 1)) {
            capture_at = &capture_at[1..];
            let spec = capture.expect("capture_at is non-empty only with a spec");
            let devices = graph
                .nodes()
                .map(|v| {
                    if spec.scripted[v.index()] || quarantined[v.index()] {
                        Some(None)
                    } else {
                        slots[v.index()]
                            .as_ref()
                            .expect("run is only reached after every node is assigned")
                            .device
                            .fork()
                            .map(Some)
                    }
                })
                .collect::<Option<Vec<_>>>();
            match devices {
                None => capture_dead = true,
                Some(devices) => captures.push(TickSnapshot {
                    tick: t + 1,
                    e_count: e_count as u32,
                    n: n as u32,
                    traces: traces.clone(),
                    delivered: delivered.clone(),
                    snap_bytes: snap_bytes.clone(),
                    snap_ends: snap_ends.clone(),
                    quarantined: quarantined.clone(),
                    misbehavior: misbehavior.clone(),
                    devices,
                }),
            }
        }
    }

    // Regroup the time-major slab into the public per-edge traces. The
    // payloads are *moved* (t outer, e inner), so this is pointer traffic,
    // not refcount churn.
    let mut edge_traces: Vec<Vec<Option<Payload>>> = (0..e_count)
        .map(|_| Vec::with_capacity(horizon as usize))
        .collect();
    let mut drained = traces.into_iter();
    for _ in 0..horizon {
        for trace in edge_traces.iter_mut() {
            trace.push(drained.next().expect("slab holds horizon * E entries"));
        }
    }
    // Snapshots: slice the arena back out into per-node, per-tick vectors.
    let mut snaps: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(horizon as usize); n];
    let mut prev_end = 0usize;
    for (i, &end) in snap_ends.iter().enumerate() {
        snaps[i % n].push(snap_bytes[prev_end..end as usize].to_vec());
        prev_end = end as usize;
    }

    let nodes = graph
        .nodes()
        .map(|v| {
            let slot = slots[v.index()]
                .as_ref()
                .expect("run is only reached after every node is assigned");
            NodeBehavior {
                device_name: slot.device.name().to_string(),
                input: slot.ctx.input,
                snaps: std::mem::take(&mut snaps[v.index()]),
            }
        })
        .collect();
    // The public edge map is assembled once, after the run; `zip` pairs
    // each directed edge with its dense trace because both follow the
    // `directed_edges` order.
    let edges: std::collections::BTreeMap<(NodeId, NodeId), Vec<Option<Payload>>> =
        edge_list.into_iter().zip(edge_traces).collect();
    Ok((
        SystemBehavior::new(Arc::clone(graph), nodes, edges, horizon, misbehavior),
        captures,
    ))
}
