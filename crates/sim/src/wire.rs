//! A tiny deterministic byte codec for message payloads and state snapshots.
//!
//! Device behaviors are compared byte-for-byte by the refuters, so every
//! encoding must be canonical: the same logical value always serializes to
//! the same bytes. This module provides a minimal writer/reader pair used by
//! the protocol implementations; it is *not* a general serialization
//! framework, just enough structure to keep protocol code honest and
//! readable.

use std::fmt;

/// Canonical byte writer.
///
/// # Example
///
/// ```
/// use flm_sim::wire::{Writer, Reader};
///
/// let mut w = Writer::new();
/// w.u32(7).bool(true).f64(0.5).bytes(b"abc");
/// let buf = w.finish();
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.bool().unwrap(), true);
/// assert_eq!(r.f64().unwrap(), 0.5);
/// assert_eq!(r.bytes().unwrap(), b"abc");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32` (big-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64` (big-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(u8::from(v));
        self
    }

    /// Appends an `f64` by its IEEE-754 bit pattern (big-endian). NaN would
    /// break canonicality; callers must not encode NaN.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        debug_assert!(!v.is_nan(), "NaN payloads are not canonical");
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string (same layout as
    /// [`Writer::bytes`]).
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends an `Option<bool>` as one byte (0 = none, 1 = false, 2 = true).
    pub fn opt_bool(&mut self, v: Option<bool>) -> &mut Self {
        self.buf.push(match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        self
    }

    /// Consumes the writer, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Error returned when a [`Reader`] runs out of bytes or sees an invalid tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload")
    }
}

impl std::error::Error for DecodeError {}

/// Canonical byte reader; the mirror of [`Writer`].
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the input is exhausted.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self
            .take(4)?
            .try_into()
            .expect("take(4) yields exactly 4 bytes");
        Ok(u32::from_be_bytes(bytes))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self
            .take(8)?
            .try_into()
            .expect("take(8) yields exactly 8 bytes");
        Ok(u64::from_be_bytes(bytes))
    }

    /// Reads a bool byte; any value other than 0 or 1 is an error.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input or an invalid tag.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError),
        }
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string (see [`Writer::str`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError)
    }

    /// Reads an `Option<bool>` (see [`Writer::opt_bool`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input or an invalid tag.
    pub fn opt_bool(&mut self) -> Result<Option<bool>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            _ => Err(DecodeError),
        }
    }

    /// True when all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of unconsumed bytes. Decoders of length-prefixed collections
    /// check claimed element counts against this before allocating, so a
    /// corrupted count can never provoke an oversized allocation.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(0xAB)
            .u32(123_456)
            .u64(u64::MAX - 1)
            .bool(false)
            .f64(-2.5)
            .bytes(b"hello")
            .opt_bool(Some(true))
            .opt_bool(None);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.opt_bool().unwrap(), Some(true));
        assert_eq!(r.opt_bool().unwrap(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = Reader::new(&[0, 0, 0]);
        assert_eq!(r.u32(), Err(DecodeError));
        let mut r = Reader::new(&[0, 0, 0, 9, 1]);
        assert_eq!(r.bytes(), Err(DecodeError));
    }

    #[test]
    fn invalid_tags_error() {
        let mut r = Reader::new(&[7]);
        assert_eq!(r.bool(), Err(DecodeError));
        let mut r = Reader::new(&[9]);
        assert_eq!(r.opt_bool(), Err(DecodeError));
    }

    #[test]
    fn str_roundtrip_and_invalid_utf8() {
        let mut w = Writer::new();
        w.str("κ-connectivity").str("");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str().unwrap(), "κ-connectivity");
        assert_eq!(r.str().unwrap(), "");
        assert!(r.is_empty());
        // A length-prefixed byte string that is not UTF-8 must error.
        let mut r = Reader::new(&[0, 0, 0, 2, 0xFF, 0xFE]);
        assert_eq!(r.str(), Err(DecodeError));
    }

    #[test]
    fn remaining_tracks_consumption() {
        let mut r = Reader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(r.remaining(), 5);
        r.u8().unwrap();
        assert_eq!(r.remaining(), 4);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn encoding_is_canonical() {
        let enc = |x: u32| {
            let mut w = Writer::new();
            w.u32(x);
            w.finish()
        };
        assert_eq!(enc(5), enc(5));
        assert_ne!(enc(5), enc(6));
    }
}
