//! A zoo of Byzantine adversary devices.
//!
//! The positive side of the reproduction — EIG, phase-king, DLPSW, the relay
//! overlay — must meet its correctness conditions against *every* behavior
//! of up to `f` faulty nodes. These wrappers provide the classic strategies;
//! `flm-protocols`' tests run each protocol against all of them (and
//! proptest-seeded [`RandomAdversary`]s).
//!
//! Note the contrast with [`crate::replay::ReplayDevice`]: the replay device
//! realizes the Fault *axiom* (arbitrary per-edge masquerading, the
//! impossibility side); these adversaries are concrete attack strategies
//! (the achievability side).

use crate::auth::mix64;
use crate::device::{snapshot, Device, NodeCtx, Payload};
use crate::Tick;

/// Runs an honest device until `crash_at`, then is silent forever.
pub struct CrashAdversary {
    inner: Box<dyn Device>,
    crash_at: Tick,
}

impl CrashAdversary {
    /// Wraps `inner`, crashing it at tick `crash_at` (that tick is silent).
    pub fn new(inner: Box<dyn Device>, crash_at: Tick) -> Self {
        CrashAdversary { inner, crash_at }
    }
}

impl Device for CrashAdversary {
    fn name(&self) -> &'static str {
        "Crash"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.inner.init(ctx);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        if t >= self.crash_at {
            return inbox.iter().map(|_| None).collect();
        }
        self.inner.step(t, inbox)
    }

    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"crashed")
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(CrashAdversary {
            inner: self.inner.fork()?,
            crash_at: self.crash_at,
        }))
    }
}

/// Never says anything.
#[derive(Debug, Default, Clone)]
pub struct SilentAdversary;

impl Device for SilentAdversary {
    fn name(&self) -> &'static str {
        "Silent"
    }

    fn init(&mut self, _ctx: &NodeCtx) {}

    fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"silent")
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// Sends seed-derived garbage bytes on every port, differently per port and
/// tick (so it also equivocates). Deterministic given the seed.
#[derive(Debug, Clone)]
pub struct RandomAdversary {
    seed: u64,
    heard: u64,
}

impl RandomAdversary {
    /// Creates the adversary from a seed.
    pub fn new(seed: u64) -> Self {
        RandomAdversary {
            seed: mix64(seed ^ 0x00AD_BEEF),
            heard: 0,
        }
    }
}

impl Device for RandomAdversary {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.seed = mix64(self.seed ^ u64::from(ctx.node.0));
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        // Adaptivity: fold what it hears into its stream.
        for m in inbox.iter().flatten() {
            for &b in m {
                self.heard = mix64(self.heard ^ u64::from(b));
            }
        }
        (0..inbox.len())
            .map(|p| {
                let h = mix64(self.seed ^ self.heard ^ ((p as u64) << 40) ^ u64::from(t.0));
                match h % 4 {
                    0 => None,
                    1 => Some(vec![h as u8].into()),
                    2 => Some(vec![h as u8, (h >> 8) as u8].into()),
                    _ => Some(vec![u8::from(h.is_multiple_of(2))].into()),
                }
            })
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(&self.heard.to_be_bytes())
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// Runs two instances of an honest device with different inputs and shows
/// each half of its neighbors a different personality — the classic
/// split-brain equivocation that defeats naive majority voting.
pub struct TwoFacedAdversary {
    zero_face: Box<dyn Device>,
    one_face: Box<dyn Device>,
}

impl TwoFacedAdversary {
    /// Wraps two instances of the honest device; `zero_face` is shown to the
    /// lower half of the ports (it is initialized with input 0), `one_face`
    /// to the upper half (input 1).
    pub fn new(zero_face: Box<dyn Device>, one_face: Box<dyn Device>) -> Self {
        TwoFacedAdversary {
            zero_face,
            one_face,
        }
    }
}

impl Device for TwoFacedAdversary {
    fn name(&self) -> &'static str {
        "TwoFaced"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        let mut zero_ctx = ctx.clone();
        zero_ctx.input = crate::device::Input::Bool(false);
        let mut one_ctx = ctx.clone();
        one_ctx.input = crate::device::Input::Bool(true);
        self.zero_face.init(&zero_ctx);
        self.one_face.init(&one_ctx);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let zero_out = self.zero_face.step(t, inbox);
        let one_out = self.one_face.step(t, inbox);
        let half = inbox.len() / 2;
        zero_out
            .into_iter()
            .take(half)
            .chain(one_out.into_iter().skip(half))
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"two-faced")
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(TwoFacedAdversary {
            zero_face: self.zero_face.fork()?,
            one_face: self.one_face.fork()?,
        }))
    }
}

/// Echoes back at tick `t+1` whatever it received at tick `t` on the same
/// port — a "mirror" that can confuse protocols relying on message
/// freshness.
#[derive(Debug, Default, Clone)]
pub struct MirrorAdversary {
    pending: Vec<Option<Payload>>,
}

impl Device for MirrorAdversary {
    fn name(&self) -> &'static str {
        "Mirror"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.pending = vec![None; ctx.port_count()];
    }

    fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        std::mem::replace(&mut self.pending, inbox.to_vec())
    }

    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"mirror")
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// The full strategy zoo over a given honest-device factory, used by
/// protocol test suites: for strategy index `i` and seed `s`, produces a
/// boxed adversary.
pub fn strategy(index: usize, seed: u64, honest: &dyn Fn() -> Box<dyn Device>) -> Box<dyn Device> {
    match index % 5 {
        0 => Box::new(CrashAdversary::new(honest(), Tick((seed % 4) as u32))),
        1 => Box::new(SilentAdversary),
        2 => Box::new(RandomAdversary::new(seed)),
        3 => Box::new(TwoFacedAdversary::new(honest(), honest())),
        _ => Box::new(MirrorAdversary::default()),
    }
}

/// Number of distinct strategies [`strategy`] cycles through.
pub const STRATEGY_COUNT: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Input;
    use crate::devices::NaiveMajorityDevice;
    use crate::system::System;
    use flm_graph::{builders, NodeId};

    #[test]
    fn crash_goes_silent() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(CrashAdversary::new(
                Box::new(NaiveMajorityDevice::new()),
                Tick(1),
            )),
            Input::Bool(true),
        );
        sys.assign(NodeId(1), Box::new(SilentAdversary), Input::None);
        let b = sys.run(3);
        let e = b.edge(NodeId(0), NodeId(1));
        assert!(e[0].is_some()); // broadcast its input before crashing
        assert!(e[1].is_none() && e[2].is_none());
    }

    #[test]
    fn two_faced_shows_different_values() {
        // On K4, the two-faced node tells half the ports 0 and half 1.
        let g = builders::complete(4);
        let mut sys = System::new(g);
        sys.assign(
            NodeId(0),
            Box::new(TwoFacedAdversary::new(
                Box::new(NaiveMajorityDevice::new()),
                Box::new(NaiveMajorityDevice::new()),
            )),
            Input::Bool(false),
        );
        for v in [1, 2, 3] {
            sys.assign(NodeId(v), Box::new(SilentAdversary), Input::None);
        }
        let b = sys.run(1);
        // Port order at node 0 is [1, 2, 3]; half = 1 → port to node 1 gets
        // the zero face, ports to 2 and 3 get the one face.
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], Some(vec![0].into()));
        assert_eq!(b.edge(NodeId(0), NodeId(3))[0], Some(vec![1].into()));
    }

    #[test]
    fn mirror_echoes_with_one_tick_delay() {
        let g = builders::path(2);
        let mut sys = System::new(g);
        sys.assign(NodeId(0), Box::new(MirrorAdversary::default()), Input::None);
        sys.assign(
            NodeId(1),
            Box::new(crate::devices::TableDevice::new(3, 10)),
            Input::Bool(true),
        );
        let b = sys.run(4);
        // Mirror's output at t equals what the table sent at t-2 (one tick
        // in flight, one tick buffered in the mirror).
        assert_eq!(b.edge(NodeId(0), NodeId(1))[0], None);
        assert_eq!(b.edge(NodeId(0), NodeId(1))[1], None);
        for t in 2..4 {
            assert_eq!(
                b.edge(NodeId(0), NodeId(1))[t],
                b.edge(NodeId(1), NodeId(0))[t - 2]
            );
        }
    }

    #[test]
    fn random_adversary_is_deterministic() {
        let run = || {
            let mut sys = System::new(builders::triangle());
            sys.assign(NodeId(0), Box::new(RandomAdversary::new(9)), Input::None);
            sys.assign(NodeId(1), Box::new(SilentAdversary), Input::None);
            sys.assign(NodeId(2), Box::new(SilentAdversary), Input::None);
            sys.run(5)
        };
        assert_eq!(run().edges(), run().edges());
    }

    #[test]
    fn strategy_factory_covers_all() {
        for i in 0..STRATEGY_COUNT {
            let d = strategy(i, 42, &|| Box::new(NaiveMajorityDevice::new()));
            assert!(!d.name().is_empty());
        }
    }
}
