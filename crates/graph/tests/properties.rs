//! Property-based tests for `flm-graph`.
//!
//! These quantify over randomized graphs and partitions, checking the
//! structural invariants every FLM proof leans on: flow-based connectivity
//! agrees with brute force, covers really are locally isomorphic, disjoint
//! paths really are disjoint, and quotients collapse partitions correctly.

use std::collections::BTreeSet;

use flm_graph::covering::{node_bound_partition, quotient, Covering};
use flm_graph::{adequacy, builders, connectivity, NodeId};
use proptest::prelude::*;

/// Strategy: a deterministic pseudo-random connected graph.
fn arb_connected_graph() -> impl Strategy<Value = flm_graph::Graph> {
    (4usize..10, 0usize..8, 0u64..1000)
        .prop_map(|(n, extra, seed)| builders::random_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flow_connectivity_matches_brute_force(g in arb_connected_graph()) {
        prop_assert_eq!(
            connectivity::vertex_connectivity(&g),
            connectivity::vertex_connectivity_brute(&g)
        );
    }

    #[test]
    fn min_cut_size_equals_connectivity_and_separates(g in arb_connected_graph()) {
        let kappa = connectivity::vertex_connectivity(&g);
        if let Some((cut, s, t)) = connectivity::min_vertex_cut(&g) {
            prop_assert_eq!(cut.len(), kappa);
            prop_assert!(!cut.contains(&s));
            prop_assert!(!cut.contains(&t));
            let (rest, order) = g.remove_nodes(&cut);
            prop_assert!(!rest.is_connected() || rest.node_count() < 2);
            // s and t are in different components.
            let pos = |x: NodeId| NodeId(order.iter().position(|&v| v == x).unwrap() as u32);
            let comps = rest.components();
            let cs = comps.iter().position(|c| c.contains(&pos(s)));
            let ct = comps.iter().position(|c| c.contains(&pos(t)));
            prop_assert_ne!(cs, ct);
        } else {
            // No cut exists only for complete graphs.
            let n = g.node_count();
            prop_assert!(g.nodes().all(|v| g.degree(v) == n - 1));
        }
    }

    #[test]
    fn disjoint_paths_witness_local_connectivity(
        g in arb_connected_graph(),
        pick in 0usize..100,
    ) {
        let n = g.node_count();
        let s = NodeId((pick % n) as u32);
        let t = NodeId(((pick / n + 1 + s.index()) % n) as u32);
        prop_assume!(s != t);
        let paths = connectivity::vertex_disjoint_paths(&g, s, t);
        prop_assert_eq!(paths.len(), connectivity::local_connectivity(&g, s, t));
        let mut interior = BTreeSet::new();
        for p in &paths {
            prop_assert_eq!(p.first(), Some(&s));
            prop_assert_eq!(p.last(), Some(&t));
            for pair in p.windows(2) {
                prop_assert!(g.has_link(pair[0], pair[1]));
            }
            for w in &p[1..p.len() - 1] {
                prop_assert!(interior.insert(*w), "interior node reused");
            }
        }
    }

    #[test]
    fn double_cover_is_validated_covering(g in arb_connected_graph(), seed in 0u64..100) {
        // Pick two disjoint random classes with at least one cross link.
        let n = g.node_count();
        let x: BTreeSet<NodeId> = g.nodes().filter(|v| (v.0 as u64 + seed).is_multiple_of(3)).collect();
        let y: BTreeSet<NodeId> = g.nodes().filter(|v| (v.0 as u64 + seed) % 3 == 1).collect();
        prop_assume!(!x.is_empty() && !y.is_empty());
        match Covering::double_cover_crossing(&g, &x, &y) {
            Ok(cov) => {
                prop_assert_eq!(cov.cover().node_count(), 2 * n);
                // Fibers all have size exactly 2.
                for v in g.nodes() {
                    prop_assert_eq!(cov.fiber(v).len(), 2);
                }
                // Degrees are preserved (already checked by validation, but
                // assert the public view).
                for s in cov.cover().nodes() {
                    prop_assert_eq!(cov.cover().degree(s), g.degree(cov.project(s)));
                }
            }
            Err(_) => {
                // Only acceptable failure: no cross link between classes.
                let crosses = g.links().iter().any(|&(u, v)| {
                    (x.contains(&u) && y.contains(&v)) || (y.contains(&u) && x.contains(&v))
                });
                prop_assert!(!crosses);
            }
        }
    }

    #[test]
    fn cyclic_covers_validate(b in 3usize..6, m in 2usize..6) {
        let cov = Covering::cyclic_cover(b, m).unwrap();
        prop_assert_eq!(cov.cover().node_count(), b * m);
        for s in cov.cover().nodes() {
            prop_assert_eq!(cov.project(s), NodeId(s.0 % b as u32));
            // lift_neighbor round-trips: lifting each base neighbor gives
            // exactly the cover neighbors.
            let lifted: BTreeSet<NodeId> = cov
                .base()
                .neighbors(cov.project(s))
                .map(|t| cov.lift_neighbor(s, t))
                .collect();
            let actual: BTreeSet<NodeId> = cov.cover().neighbors(s).collect();
            prop_assert_eq!(lifted, actual);
        }
    }

    #[test]
    fn node_bound_partition_is_partition_with_bounded_classes(
        f in 1usize..5,
        n_off in 0usize..10,
    ) {
        let n = 3 + n_off;
        prop_assume!(n <= 3 * f);
        let classes = node_bound_partition(n, f).unwrap();
        let mut all = BTreeSet::new();
        for c in &classes {
            prop_assert!(!c.is_empty());
            prop_assert!(c.len() <= f);
            for &v in c {
                prop_assert!(all.insert(v));
            }
        }
        prop_assert_eq!(all.len(), n);
    }

    #[test]
    fn quotient_of_node_bound_partition_is_connected_on_complete(
        f in 1usize..5, n_off in 0usize..10,
    ) {
        let n = 3 + n_off;
        prop_assume!(n <= 3 * f);
        let g = builders::complete(n);
        let classes = node_bound_partition(n, f).unwrap();
        let (q, class_of) = quotient(&g, &classes).unwrap();
        prop_assert_eq!(q.node_count(), 3);
        // K_n quotients onto the triangle whenever all classes nonempty.
        prop_assert_eq!(q.link_count(), 3);
        prop_assert_eq!(class_of.len(), n);
    }

    #[test]
    fn adequacy_monotone_in_f(g in arb_connected_graph()) {
        // If a graph tolerates f faults it tolerates f-1.
        let fmax = adequacy::max_tolerable_faults(&g);
        for f in 0..=fmax {
            prop_assert!(adequacy::is_adequate(&g, f));
        }
        prop_assert!(!adequacy::is_adequate(&g, fmax + 1));
    }
}
