//! Property-based tests for `flm-graph`.
//!
//! These quantify over randomized graphs and partitions, checking the
//! structural invariants every FLM proof leans on: flow-based connectivity
//! agrees with brute force, covers really are locally isomorphic, disjoint
//! paths really are disjoint, and quotients collapse partitions correctly.

use std::collections::BTreeSet;

use flm_graph::covering::{node_bound_partition, quotient, Covering};
use flm_graph::{adequacy, builders, connectivity, NodeId};
use flm_prop::Rng;

/// A deterministic pseudo-random connected graph.
fn arb_connected_graph(rng: &mut Rng) -> flm_graph::Graph {
    let n = rng.usize(4..10);
    let extra = rng.usize(0..8);
    let seed = rng.range_u64(0..1000);
    builders::random_connected(n, extra, seed)
}

#[test]
fn flow_connectivity_matches_brute_force() {
    flm_prop::cases(64, 0x61F1, |rng| {
        let g = arb_connected_graph(rng);
        assert_eq!(
            connectivity::vertex_connectivity(&g),
            connectivity::vertex_connectivity_brute(&g)
        );
    });
}

#[test]
fn min_cut_size_equals_connectivity_and_separates() {
    flm_prop::cases(64, 0x61F2, |rng| {
        let g = arb_connected_graph(rng);
        let kappa = connectivity::vertex_connectivity(&g);
        if let Some((cut, s, t)) = connectivity::min_vertex_cut(&g) {
            assert_eq!(cut.len(), kappa);
            assert!(!cut.contains(&s));
            assert!(!cut.contains(&t));
            let (rest, order) = g.remove_nodes(&cut);
            assert!(!rest.is_connected() || rest.node_count() < 2);
            // s and t are in different components.
            let pos = |x: NodeId| NodeId(order.iter().position(|&v| v == x).unwrap() as u32);
            let comps = rest.components();
            let cs = comps.iter().position(|c| c.contains(&pos(s)));
            let ct = comps.iter().position(|c| c.contains(&pos(t)));
            assert_ne!(cs, ct);
        } else {
            // No cut exists only for complete graphs.
            let n = g.node_count();
            assert!(g.nodes().all(|v| g.degree(v) == n - 1));
        }
    });
}

#[test]
fn disjoint_paths_witness_local_connectivity() {
    flm_prop::cases(64, 0x61F3, |rng| {
        let g = arb_connected_graph(rng);
        let pick = rng.usize(0..100);
        let n = g.node_count();
        let s = NodeId((pick % n) as u32);
        let t = NodeId(((pick / n + 1 + s.index()) % n) as u32);
        if s == t {
            return;
        }
        let paths = connectivity::vertex_disjoint_paths(&g, s, t);
        assert_eq!(paths.len(), connectivity::local_connectivity(&g, s, t));
        let mut interior = BTreeSet::new();
        for p in &paths {
            assert_eq!(p.first(), Some(&s));
            assert_eq!(p.last(), Some(&t));
            for pair in p.windows(2) {
                assert!(g.has_link(pair[0], pair[1]));
            }
            for w in &p[1..p.len() - 1] {
                assert!(interior.insert(*w), "interior node reused");
            }
        }
    });
}

#[test]
fn double_cover_is_validated_covering() {
    flm_prop::cases(64, 0x61F4, |rng| {
        let g = arb_connected_graph(rng);
        let seed = rng.range_u64(0..100);
        // Pick two disjoint random classes with at least one cross link.
        let n = g.node_count();
        let x: BTreeSet<NodeId> = g
            .nodes()
            .filter(|v| (u64::from(v.0) + seed).is_multiple_of(3))
            .collect();
        let y: BTreeSet<NodeId> = g
            .nodes()
            .filter(|v| (u64::from(v.0) + seed) % 3 == 1)
            .collect();
        if x.is_empty() || y.is_empty() {
            return;
        }
        match Covering::double_cover_crossing(&g, &x, &y) {
            Ok(cov) => {
                assert_eq!(cov.cover().node_count(), 2 * n);
                // Fibers all have size exactly 2.
                for v in g.nodes() {
                    assert_eq!(cov.fiber(v).len(), 2);
                }
                // Degrees are preserved (already checked by validation, but
                // assert the public view).
                for s in cov.cover().nodes() {
                    assert_eq!(cov.cover().degree(s), g.degree(cov.project(s)));
                }
            }
            Err(_) => {
                // Only acceptable failure: no cross link between classes.
                let crosses = g.links().iter().any(|&(u, v)| {
                    (x.contains(&u) && y.contains(&v)) || (y.contains(&u) && x.contains(&v))
                });
                assert!(!crosses);
            }
        }
    });
}

#[test]
fn cyclic_covers_validate() {
    flm_prop::cases(48, 0x61F5, |rng| {
        let b = rng.usize(3..6);
        let m = rng.usize(2..6);
        let cov = Covering::cyclic_cover(b, m).unwrap();
        assert_eq!(cov.cover().node_count(), b * m);
        for s in cov.cover().nodes() {
            assert_eq!(cov.project(s), NodeId(s.0 % b as u32));
            // lift_neighbor round-trips: lifting each base neighbor gives
            // exactly the cover neighbors.
            let lifted: BTreeSet<NodeId> = cov
                .base()
                .neighbors(cov.project(s))
                .map(|t| cov.lift_neighbor(s, t))
                .collect();
            let actual: BTreeSet<NodeId> = cov.cover().neighbors(s).collect();
            assert_eq!(lifted, actual);
        }
    });
}

#[test]
fn node_bound_partition_is_partition_with_bounded_classes() {
    flm_prop::cases(64, 0x61F6, |rng| {
        let f = rng.usize(1..5);
        let n = 3 + rng.usize(0..10);
        if n > 3 * f {
            return;
        }
        let classes = node_bound_partition(n, f).unwrap();
        let mut all = BTreeSet::new();
        for c in &classes {
            assert!(!c.is_empty());
            assert!(c.len() <= f);
            for &v in c {
                assert!(all.insert(v));
            }
        }
        assert_eq!(all.len(), n);
    });
}

#[test]
fn quotient_of_node_bound_partition_is_connected_on_complete() {
    flm_prop::cases(64, 0x61F7, |rng| {
        let f = rng.usize(1..5);
        let n = 3 + rng.usize(0..10);
        if n > 3 * f {
            return;
        }
        let g = builders::complete(n);
        let classes = node_bound_partition(n, f).unwrap();
        let (q, class_of) = quotient(&g, &classes).unwrap();
        assert_eq!(q.node_count(), 3);
        // K_n quotients onto the triangle whenever all classes nonempty.
        assert_eq!(q.link_count(), 3);
        assert_eq!(class_of.len(), n);
    });
}

#[test]
fn adequacy_monotone_in_f() {
    flm_prop::cases(64, 0x61F8, |rng| {
        let g = arb_connected_graph(rng);
        // If a graph tolerates f faults it tolerates f-1.
        let fmax = adequacy::max_tolerable_faults(&g);
        for f in 0..=fmax {
            assert!(adequacy::is_adequate(&g, f));
        }
        assert!(!adequacy::is_adequate(&g, fmax + 1));
    });
}
