//! The paper's adequacy dichotomy.
//!
//! FLM §1: for a fault budget `f`, a communication graph is **inadequate**
//! when it has fewer than `3f + 1` nodes *or* vertex connectivity less than
//! `2f + 1` (graphs are assumed to have at least three nodes). Every
//! consensus problem in the paper is unsolvable exactly on inadequate
//! graphs; `flm-core`'s refuters construct explicit counterexamples for
//! them, while `flm-protocols` provides working protocols for adequate ones.

use crate::{connectivity, Graph};

/// Why a graph is inadequate for a given fault budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inadequacy {
    /// Fewer than `3f + 1` nodes: `n ≤ 3f`.
    TooFewNodes {
        /// The node count `n`.
        n: usize,
        /// The fault budget `f`.
        f: usize,
    },
    /// Vertex connectivity at most `2f`: `κ(G) ≤ 2f`.
    TooLowConnectivity {
        /// The measured vertex connectivity κ(G).
        kappa: usize,
        /// The fault budget `f`.
        f: usize,
    },
}

impl std::fmt::Display for Inadequacy {
    fn fmt(&self, f_: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inadequacy::TooFewNodes { n, f } => {
                write!(f_, "{n} nodes < 3f+1 = {} for f = {f}", 3 * f + 1)
            }
            Inadequacy::TooLowConnectivity { kappa, f } => {
                write!(
                    f_,
                    "connectivity {kappa} < 2f+1 = {} for f = {f}",
                    2 * f + 1
                )
            }
        }
    }
}

/// Classifies a graph against the paper's bounds for fault budget `f`.
///
/// Returns `Ok(())` for adequate graphs, or the *first* reason for
/// inadequacy (node count is checked before connectivity, mirroring the
/// paper's proof order). `f = 0` makes every connected graph with ≥ 3 nodes
/// adequate.
///
/// # Panics
///
/// Panics if the graph has fewer than three nodes — the paper assumes
/// `|G| ≥ 3` throughout.
pub fn classify(g: &Graph, f: usize) -> Result<(), Inadequacy> {
    let n = g.node_count();
    assert!(n >= 3, "the FLM model assumes graphs with at least 3 nodes");
    if n < 3 * f + 1 {
        return Err(Inadequacy::TooFewNodes { n, f });
    }
    let kappa = connectivity::vertex_connectivity(g);
    if kappa < 2 * f + 1 {
        return Err(Inadequacy::TooLowConnectivity { kappa, f });
    }
    Ok(())
}

/// True when `g` is adequate for `f` faults: `n ≥ 3f + 1` **and**
/// `κ(G) ≥ 2f + 1`.
///
/// # Panics
///
/// Panics if the graph has fewer than three nodes.
pub fn is_adequate(g: &Graph, f: usize) -> bool {
    classify(g, f).is_ok()
}

/// The largest fault budget this graph is adequate for:
/// `min(⌊(n−1)/3⌋, ⌊(κ−1)/2⌋)`.
///
/// # Panics
///
/// Panics if the graph has fewer than three nodes.
pub fn max_tolerable_faults(g: &Graph) -> usize {
    let n = g.node_count();
    assert!(n >= 3, "the FLM model assumes graphs with at least 3 nodes");
    let kappa = connectivity::vertex_connectivity(g);
    ((n - 1) / 3).min(kappa.saturating_sub(1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn triangle_inadequate_for_one_fault() {
        let g = builders::triangle();
        assert_eq!(classify(&g, 1), Err(Inadequacy::TooFewNodes { n: 3, f: 1 }));
    }

    #[test]
    fn k4_adequate_for_one_fault() {
        assert!(is_adequate(&builders::complete(4), 1));
    }

    #[test]
    fn cycle4_fails_on_connectivity() {
        // 4 nodes ≥ 3f+1 for f=1, but κ = 2 < 3.
        assert_eq!(
            classify(&builders::cycle(4), 1),
            Err(Inadequacy::TooLowConnectivity { kappa: 2, f: 1 })
        );
    }

    #[test]
    fn node_bound_checked_before_connectivity() {
        // Triangle fails both; the node reason is reported.
        assert!(matches!(
            classify(&builders::triangle(), 1),
            Err(Inadequacy::TooFewNodes { .. })
        ));
    }

    #[test]
    fn zero_faults_is_always_adequate_for_connected_graphs() {
        assert!(is_adequate(&builders::path(3), 0));
        assert!(is_adequate(&builders::cycle(5), 0));
    }

    #[test]
    fn frontier_for_complete_graphs() {
        // K_n tolerates exactly ⌊(n−1)/3⌋ faults (connectivity n−1 is not
        // binding: (n−1−1)/2 ≥ (n−1)/3 for n ≥ 3... check via the function).
        for (n, want) in [(3, 0), (4, 1), (6, 1), (7, 2), (9, 2), (10, 3)] {
            assert_eq!(max_tolerable_faults(&builders::complete(n)), want, "K_{n}");
        }
    }

    #[test]
    fn frontier_for_cycles_is_zero() {
        // κ = 2 < 3 for any f ≥ 1.
        for n in [4, 7, 12] {
            assert_eq!(max_tolerable_faults(&builders::cycle(n)), 0);
        }
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            Inadequacy::TooFewNodes { n: 3, f: 1 }.to_string(),
            "3 nodes < 3f+1 = 4 for f = 1"
        );
        assert_eq!(
            Inadequacy::TooLowConnectivity { kappa: 2, f: 1 }.to_string(),
            "connectivity 2 < 2f+1 = 3 for f = 1"
        );
    }
}
