//! Distance metrics on communication graphs.
//!
//! The ring refuters size their covers by information-propagation distance;
//! these helpers expose the underlying quantities (BFS distances,
//! eccentricity, diameter) for experiments and for sizing heuristics.

use crate::{Graph, NodeId};

/// BFS distances from `source` (`usize::MAX` for unreachable nodes).
///
/// # Panics
///
/// Panics if `source` is not a node of the graph.
pub fn distances_from(g: &Graph, source: NodeId) -> Vec<usize> {
    let n = g.node_count();
    assert!(source.index() < n, "source out of range");
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The eccentricity of `v`: its greatest distance to any reachable node.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    distances_from(g, v)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0)
}

/// The diameter of a connected graph: the greatest pairwise distance.
/// Returns `None` for disconnected graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 || !g.is_connected() {
        return None;
    }
    g.nodes().map(|v| eccentricity(g, v)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn distances_on_a_path() {
        let g = builders::path(5);
        assert_eq!(distances_from(&g, NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn diameters_of_named_graphs() {
        assert_eq!(diameter(&builders::complete(6)), Some(1));
        assert_eq!(diameter(&builders::cycle(8)), Some(4));
        assert_eq!(diameter(&builders::path(4)), Some(3));
        assert_eq!(diameter(&builders::hypercube(3)), Some(3));
        let disconnected = builders::from_links(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&disconnected), None);
    }

    #[test]
    fn ring_cover_diameter_grows_linearly() {
        // The covers the ring refuters build really do spread information
        // slowly: diameter of C_{3m} is ⌊3m/2⌋.
        use crate::covering::Covering;
        for m in [2usize, 4, 8] {
            let cov = Covering::cyclic_cover(3, m).unwrap();
            assert_eq!(diameter(cov.cover()), Some(3 * m / 2));
        }
    }
}
