//! Communication graphs for the FLM impossibility framework.
//!
//! This crate provides the graph-theoretic substrate of *Fischer, Lynch &
//! Merritt, "Easy Impossibility Proofs for Distributed Consensus Problems"*
//! (PODC 1985):
//!
//! * [`Graph`] — communication graphs in the paper's sense: directed graphs
//!   whose edges occur in anti-parallel pairs, so that communication in each
//!   direction is modeled separately.
//! * [`connectivity`] — vertex connectivity κ(G) via Menger's theorem
//!   (max-flow on the node-split graph), plus extraction of vertex-disjoint
//!   path systems used by the relay overlay in `flm-protocols`.
//! * [`adequacy`] — the paper's central dichotomy: a graph is *inadequate*
//!   for `f` faults when it has fewer than `3f+1` nodes or vertex
//!   connectivity less than `2f+1`.
//! * [`covering`] — graph coverings (locally isomorphic "unrollings") and
//!   the specific constructions every proof in the paper rests on: the
//!   crossed double cover (hexagon / 8-cycle figures) and cyclic ring covers
//!   (the 4k-node and (k+2)-node rings of §4–§7).
//! * [`dot`] — Graphviz emitters that regenerate the paper's figures.
//! * [`metrics`] — BFS distances / diameter, used to reason about the
//!   information-propagation arguments behind the ring covers.
//!
//! # Example
//!
//! ```
//! use flm_graph::{builders, adequacy, connectivity};
//!
//! let triangle = builders::complete(3);
//! assert_eq!(connectivity::vertex_connectivity(&triangle), 2);
//! // Three nodes cannot tolerate one Byzantine fault: 3 < 3·1 + 1.
//! assert!(!adequacy::is_adequate(&triangle, 1));
//! let seven = builders::complete(7);
//! assert!(adequacy::is_adequate(&seven, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adequacy;
pub mod builders;
pub mod connectivity;
pub mod covering;
pub mod dot;
mod error;
mod graph;
pub mod metrics;

pub use error::GraphError;
pub use graph::{Graph, NodeId};
