//! Graph coverings: the engine of every FLM impossibility proof.
//!
//! A graph `S` *covers* `G` when there is a map φ from nodes of `S` to nodes
//! of `G` that preserves neighborhoods: φ restricted to the neighbors of any
//! node `s` is a bijection onto the neighbors of `φ(s)`. Under such a map,
//! `S` "looks locally like" `G` — a device installed at `s` receives exactly
//! the pattern of connections it would at `φ(s)`, so it cannot tell which
//! graph it inhabits. The paper's proofs all install the alleged consensus
//! devices in a suitable cover of the inadequate graph and harvest
//! contradictory scenarios from a single run.
//!
//! Three constructions appear in the paper, all provided here:
//!
//! * [`Covering::double_cover_crossing`] — two copies of `G` with all links
//!   between two designated node classes rerouted across the copies. With the
//!   triangle partitioned `{a},{b},{c}` and the `a`–`c` links crossed this is
//!   the hexagon of §3.1; with the 4-cycle's `a`–`b` links crossed it is the
//!   8-ring of §3.2.
//! * [`Covering::cyclic_cover`] — the `m`-fold unrolling of a cycle; with
//!   base the triangle these are the `4k`-node rings of §4–§5 and the
//!   `(k+2)`-node rings of §6.2 and §7.
//! * [`quotient`] — footnote 3's "collapse" of a partitioned graph to one
//!   node per class, used by the reduction from the general `n ≤ 3f` case to
//!   the three-node case.

use std::collections::BTreeSet;

use crate::{Graph, GraphError, NodeId};

/// A validated covering map φ: S → G.
///
/// Construction through [`Covering::new`] (or the named constructors)
/// guarantees the local-isomorphism property, so downstream code — the
/// simulator installing devices, the refuters extracting scenarios — can rely
/// on it without re-checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Covering {
    cover: Graph,
    base: Graph,
    map: Vec<NodeId>,
    /// `fibers[g]` = φ⁻¹(g), precomputed at construction — [`Covering::fiber`]
    /// is on refuter hot paths (once per transplanted faulty node) and must
    /// not rescan the cover or allocate.
    fibers: Vec<Vec<NodeId>>,
}

impl Covering {
    /// Validates that `map` (indexed by cover node) is a covering map from
    /// `cover` onto `base` and bundles the three into a [`Covering`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotACovering`] when the map does not preserve
    /// neighborhoods, with a description of the first violation found, and
    /// [`GraphError::BadParameter`] when `map` has the wrong length or
    /// targets outside `base`.
    pub fn new(cover: Graph, base: Graph, map: Vec<NodeId>) -> Result<Self, GraphError> {
        if map.len() != cover.node_count() {
            return Err(GraphError::BadParameter {
                reason: format!(
                    "map has {} entries for a cover with {} nodes",
                    map.len(),
                    cover.node_count()
                ),
            });
        }
        if let Some(&bad) = map.iter().find(|t| t.index() >= base.node_count()) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                nodes: base.node_count(),
            });
        }
        for s in cover.nodes() {
            let target = map[s.index()];
            let image: BTreeSet<NodeId> = cover.neighbors(s).map(|w| map[w.index()]).collect();
            let expected: BTreeSet<NodeId> = base.neighbors(target).collect();
            if cover.degree(s) != base.degree(target) {
                return Err(GraphError::NotACovering {
                    reason: format!(
                        "{s} has degree {} but its image {target} has degree {}",
                        cover.degree(s),
                        base.degree(target)
                    ),
                });
            }
            if image != expected {
                return Err(GraphError::NotACovering {
                    reason: format!(
                        "neighbors of {s} map to {image:?}, expected neighbors {expected:?} of {target}"
                    ),
                });
            }
            // Equal-size sets with equal image ⇒ the restriction is a
            // bijection (injectivity follows from |image| = degree).
        }
        let mut fibers: Vec<Vec<NodeId>> = vec![Vec::new(); base.node_count()];
        for s in cover.nodes() {
            fibers[map[s.index()].index()].push(s);
        }
        Ok(Covering {
            cover,
            base,
            map,
            fibers,
        })
    }

    /// The covering graph `S`.
    pub fn cover(&self) -> &Graph {
        &self.cover
    }

    /// The base graph `G`.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// φ(s): the base node a cover node projects to.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a node of the cover.
    pub fn project(&self, s: NodeId) -> NodeId {
        self.map[s.index()]
    }

    /// The fiber φ⁻¹(g): all cover nodes projecting to `g`, in order.
    /// Precomputed at construction; the borrow is free.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a node of the base.
    pub fn fiber(&self, g: NodeId) -> &[NodeId] {
        &self.fibers[g.index()]
    }

    /// For a cover node `s` and a base neighbor `t` of `φ(s)`, the unique
    /// cover neighbor of `s` projecting to `t` — the "lift" of the base edge
    /// `(φ(s), t)` at `s`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a neighbor of `φ(s)` in the base.
    pub fn lift_neighbor(&self, s: NodeId, t: NodeId) -> NodeId {
        self.cover
            .neighbors(s)
            .find(|w| self.map[w.index()] == t)
            .unwrap_or_else(|| panic!("{t} is not a base neighbor of φ({s})"))
    }

    /// Two copies of `base` with every link between node classes `x` and `y`
    /// rerouted to cross the copies. Cover node ids: copy 0 keeps base ids,
    /// copy 1 is offset by `n`.
    ///
    /// This realizes both §3.1 (cross the `a`–`c` links of the 3-partition)
    /// and §3.2 (cross the links between the separated class `a` and one
    /// half `b` of the vertex cut).
    ///
    /// ```
    /// use flm_graph::{builders, covering::Covering, NodeId};
    /// use std::collections::BTreeSet;
    ///
    /// // The paper's hexagon: two triangles with the a–c links crossed.
    /// let triangle = builders::triangle();
    /// let a: BTreeSet<NodeId> = [NodeId(0)].into();
    /// let c: BTreeSet<NodeId> = [NodeId(2)].into();
    /// let hexagon = Covering::double_cover_crossing(&triangle, &a, &c)?;
    /// assert_eq!(hexagon.cover().node_count(), 6);
    /// assert_eq!(hexagon.fiber(NodeId(1)).len(), 2);
    /// # Ok::<(), flm_graph::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadPartition`] if `x` and `y` overlap or
    /// mention nodes outside the graph, and [`GraphError::BadParameter`] if
    /// no `x`–`y` link exists (the "cover" would be two disjoint copies).
    pub fn double_cover_crossing(
        base: &Graph,
        x: &BTreeSet<NodeId>,
        y: &BTreeSet<NodeId>,
    ) -> Result<Self, GraphError> {
        let n = base.node_count();
        if x.intersection(y).next().is_some() {
            return Err(GraphError::BadPartition {
                reason: "crossing classes must be disjoint".into(),
            });
        }
        if let Some(&bad) = x.union(y).find(|v| v.index() >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                nodes: n,
            });
        }
        let crosses = |u: NodeId, v: NodeId| {
            (x.contains(&u) && y.contains(&v)) || (y.contains(&u) && x.contains(&v))
        };
        if !base.links().iter().any(|&(u, v)| crosses(u, v)) {
            return Err(GraphError::BadParameter {
                reason: "no link between the crossing classes; cover would be disconnected copies"
                    .into(),
            });
        }
        let mut cover = Graph::new(2 * n);
        let off = n as u32;
        for (u, v) in base.links() {
            if crosses(u, v) {
                cover.add_link(NodeId(u.0), NodeId(v.0 + off))?;
                cover.add_link(NodeId(u.0 + off), NodeId(v.0))?;
            } else {
                cover.add_link(NodeId(u.0), NodeId(v.0))?;
                cover.add_link(NodeId(u.0 + off), NodeId(v.0 + off))?;
            }
        }
        let map = (0..2 * n as u32).map(|i| NodeId(i % off)).collect();
        Covering::new(cover, base.clone(), map)
    }

    /// The `m`-fold *crossed* cyclic cover: `m` copies of `base` in a ring,
    /// with every `x`–`y` link rerouted to join consecutive copies (the `x`
    /// endpoint in copy `i`, the `y` endpoint in copy `i+1 mod m`). Cover
    /// node ids: copy `i` occupies `i·n .. (i+1)·n`.
    ///
    /// This is the paper's general unrolling: with `base` the triangle and
    /// `x = {a}`, `y = {c}` it is (an isomorphic relabeling of) the long
    /// rings of §4–§7; `m = 2` recovers [`Covering::double_cover_crossing`]
    /// up to the same relabeling.
    ///
    /// # Errors
    ///
    /// As for [`Covering::double_cover_crossing`], plus
    /// [`GraphError::BadParameter`] when `m < 2`.
    pub fn cyclic_crossed_cover(
        base: &Graph,
        x: &BTreeSet<NodeId>,
        y: &BTreeSet<NodeId>,
        m: usize,
    ) -> Result<Self, GraphError> {
        if m < 2 {
            return Err(GraphError::BadParameter {
                reason: format!("a cyclic cover needs multiplicity at least 2, got {m}"),
            });
        }
        let n = base.node_count();
        if x.intersection(y).next().is_some() {
            return Err(GraphError::BadPartition {
                reason: "crossing classes must be disjoint".into(),
            });
        }
        if let Some(&bad) = x.union(y).find(|v| v.index() >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                nodes: n,
            });
        }
        let has_cross = base.links().iter().any(|&(u, v)| {
            (x.contains(&u) && y.contains(&v)) || (y.contains(&u) && x.contains(&v))
        });
        if !has_cross {
            return Err(GraphError::BadParameter {
                reason: "no link between the crossing classes; cover would be disconnected copies"
                    .into(),
            });
        }
        let mut cover = Graph::new(n * m);
        let at = |v: NodeId, copy: usize| NodeId((copy * n) as u32 + v.0);
        for (u, v) in base.links() {
            // Orient each crossing link from its x endpoint to its y one.
            let cross = if x.contains(&u) && y.contains(&v) {
                Some((u, v))
            } else if y.contains(&u) && x.contains(&v) {
                Some((v, u))
            } else {
                None
            };
            for copy in 0..m {
                match cross {
                    Some((xu, yv)) => {
                        cover.add_link(at(xu, copy), at(yv, (copy + 1) % m))?;
                    }
                    None => {
                        cover.add_link(at(u, copy), at(v, copy))?;
                    }
                }
            }
        }
        let map = (0..(n * m) as u32).map(|i| NodeId(i % n as u32)).collect();
        Covering::new(cover, base.clone(), map)
    }

    /// The `m`-fold cyclic cover of the cycle `C_b`: the ring `C_{bm}` with
    /// φ(i) = i mod b.
    ///
    /// With `b = 3` the base is the triangle (a cycle *and* the complete
    /// graph `K_3`), and the covers are the paper's long rings: §4/§5 use
    /// `C_{4k}` (so `m = 4k/3`), §6.2/§7 use `C_{k+2}` (so `m = (k+2)/3`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadParameter`] if `b < 3` or `m < 2`.
    pub fn cyclic_cover(b: usize, m: usize) -> Result<Self, GraphError> {
        if b < 3 {
            return Err(GraphError::BadParameter {
                reason: format!("base cycle must have at least 3 nodes, got {b}"),
            });
        }
        if m < 2 {
            return Err(GraphError::BadParameter {
                reason: format!("a cyclic cover needs multiplicity at least 2, got {m}"),
            });
        }
        let base = crate::builders::cycle(b);
        let cover = crate::builders::cycle(b * m);
        let map = (0..(b * m) as u32).map(|i| NodeId(i % b as u32)).collect();
        Covering::new(cover, base, map)
    }
}

/// Footnote 3's "collapse": quotient a graph by a partition of its nodes.
///
/// Each class becomes one node; classes are linked iff some cross link
/// exists between them. Returns the quotient graph together with the class
/// index of every original node.
///
/// # Errors
///
/// Returns [`GraphError::BadPartition`] unless `classes` is a partition of
/// the node set into non-empty classes.
pub fn quotient(
    g: &Graph,
    classes: &[BTreeSet<NodeId>],
) -> Result<(Graph, Vec<usize>), GraphError> {
    let n = g.node_count();
    let mut class_of = vec![usize::MAX; n];
    for (i, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(GraphError::BadPartition {
                reason: format!("class {i} is empty"),
            });
        }
        for &v in class {
            if v.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: v, nodes: n });
            }
            if class_of[v.index()] != usize::MAX {
                return Err(GraphError::BadPartition {
                    reason: format!("{v} appears in classes {} and {i}", class_of[v.index()]),
                });
            }
            class_of[v.index()] = i;
        }
    }
    if let Some(v) = class_of.iter().position(|&c| c == usize::MAX) {
        return Err(GraphError::BadPartition {
            reason: format!("n{v} is not covered by any class"),
        });
    }
    let mut q = Graph::new(classes.len());
    for (u, v) in g.links() {
        let (cu, cv) = (class_of[u.index()], class_of[v.index()]);
        if cu != cv {
            q.add_link(NodeId(cu as u32), NodeId(cv as u32))?;
        }
    }
    Ok((q, class_of))
}

/// Splits `0..n` into three consecutive classes of sizes as equal as
/// possible — the canonical 3-partition for the `n ≤ 3f` node-bound proof,
/// where every class must have between 1 and `f` nodes.
///
/// # Errors
///
/// Returns [`GraphError::BadParameter`] when `n < 3` or `n > 3f` fails to
/// admit classes of size at most `f` (i.e. when the graph is adequate in
/// node count).
pub fn node_bound_partition(n: usize, f: usize) -> Result<[BTreeSet<NodeId>; 3], GraphError> {
    if n < 3 {
        return Err(GraphError::BadParameter {
            reason: format!("need at least 3 nodes, got {n}"),
        });
    }
    if f == 0 || n > 3 * f {
        return Err(GraphError::BadParameter {
            reason: format!("n = {n} > 3f = {} — graph is node-adequate", 3 * f),
        });
    }
    // Sizes: distribute n over 3 classes, each ≥ 1, each ≤ f. Ceil-splitting
    // achieves this: sizes differ by at most 1 and max size = ceil(n/3) ≤ f.
    let base_size = n / 3;
    let rem = n % 3;
    let mut sizes = [base_size; 3];
    for s in sizes.iter_mut().take(rem) {
        *s += 1;
    }
    let mut classes: [BTreeSet<NodeId>; 3] = Default::default();
    let mut next = 0u32;
    for (i, &sz) in sizes.iter().enumerate() {
        for _ in 0..sz {
            classes[i].insert(NodeId(next));
            next += 1;
        }
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn hexagon_covers_triangle() {
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        let cov = Covering::double_cover_crossing(&tri, &a, &c).unwrap();
        assert_eq!(cov.cover().node_count(), 6);
        // The hexagon is a 6-cycle: every node has degree 2.
        for s in cov.cover().nodes() {
            assert_eq!(cov.cover().degree(s), 2);
        }
        assert!(cov.cover().is_connected());
        // Fibers have size 2.
        for g in tri.nodes() {
            assert_eq!(cov.fiber(g).len(), 2);
        }
        // Ring order a0-b0-c0-a1-b1-c1: check the crossed links.
        assert!(cov.cover().has_link(NodeId(2), NodeId(3))); // c0 - a1
        assert!(cov.cover().has_link(NodeId(5), NodeId(0))); // c1 - a0
    }

    #[test]
    fn eight_ring_covers_cycle4() {
        let c4 = builders::cycle(4);
        // Classes: a = {0}, cut halves b = {1}, d = {3}; cross a–b links.
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let b: BTreeSet<NodeId> = [NodeId(1)].into();
        let cov = Covering::double_cover_crossing(&c4, &a, &b).unwrap();
        assert_eq!(cov.cover().node_count(), 8);
        assert!(cov.cover().is_connected());
        for s in cov.cover().nodes() {
            assert_eq!(cov.cover().degree(s), 2);
        }
    }

    #[test]
    fn crossing_overlapping_classes_is_rejected() {
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let b: BTreeSet<NodeId> = [NodeId(1)].into();
        assert!(matches!(
            Covering::double_cover_crossing(&tri, &a, &b),
            Err(GraphError::BadPartition { .. })
        ));
    }

    #[test]
    fn crossing_unlinked_classes_is_rejected() {
        let p = builders::path(3); // 0-1-2; no 0–2 link
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        assert!(matches!(
            Covering::double_cover_crossing(&p, &a, &c),
            Err(GraphError::BadParameter { .. })
        ));
    }

    #[test]
    fn cyclic_cover_of_triangle() {
        let cov = Covering::cyclic_cover(3, 4).unwrap();
        assert_eq!(cov.cover().node_count(), 12);
        for s in cov.cover().nodes() {
            assert_eq!(cov.project(s), NodeId(s.0 % 3));
        }
        // Lift of base edge (0,1) at cover node 3 (which projects to 0) is 4.
        assert_eq!(cov.lift_neighbor(NodeId(3), NodeId(1)), NodeId(4));
        // Lift of base edge (0,2) at cover node 3 is 2.
        assert_eq!(cov.lift_neighbor(NodeId(3), NodeId(2)), NodeId(2));
    }

    #[test]
    fn crossed_cyclic_cover_of_triangle_is_a_ring() {
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        for m in [2usize, 3, 5] {
            let cov = Covering::cyclic_crossed_cover(&tri, &a, &c, m).unwrap();
            assert_eq!(cov.cover().node_count(), 3 * m);
            assert!(cov.cover().is_connected());
            for s in cov.cover().nodes() {
                assert_eq!(cov.cover().degree(s), 2);
            }
        }
    }

    #[test]
    fn crossed_cyclic_cover_of_k6_partition() {
        // The §4 general case: m ring-connected copies of K6 with the
        // a–c class links crossed.
        let g = builders::complete(6);
        let [a, _b, c] = node_bound_partition(6, 2).unwrap();
        let cov = Covering::cyclic_crossed_cover(&g, &a, &c, 4).unwrap();
        assert_eq!(cov.cover().node_count(), 24);
        assert!(cov.cover().is_connected());
        for s in cov.cover().nodes() {
            assert_eq!(cov.cover().degree(s), 5);
        }
        // Fibers have size m.
        for v in g.nodes() {
            assert_eq!(cov.fiber(v).len(), 4);
        }
    }

    #[test]
    fn crossed_cyclic_cover_rejects_bad_inputs() {
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        assert!(Covering::cyclic_crossed_cover(&tri, &a, &c, 1).is_err());
        let overlap: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into();
        assert!(Covering::cyclic_crossed_cover(&tri, &overlap, &c, 3).is_err());
        // No cross link.
        let p = builders::path(3);
        let x: BTreeSet<NodeId> = [NodeId(0)].into();
        let y: BTreeSet<NodeId> = [NodeId(2)].into();
        assert!(Covering::cyclic_crossed_cover(&p, &x, &y, 3).is_err());
    }

    #[test]
    fn cyclic_cover_rejects_degenerate_parameters() {
        assert!(Covering::cyclic_cover(2, 4).is_err());
        assert!(Covering::cyclic_cover(3, 1).is_err());
    }

    #[test]
    fn covering_validation_rejects_non_coverings() {
        // The 4-cycle does NOT cover the triangle: the map i mod 3 fails.
        let c4 = builders::cycle(4);
        let tri = builders::triangle();
        let map = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0)];
        assert!(matches!(
            Covering::new(c4, tri, map),
            Err(GraphError::NotACovering { .. })
        ));
    }

    #[test]
    fn covering_validation_rejects_wrong_degree() {
        // Path covers nothing of higher degree.
        let p = builders::path(3);
        let tri = builders::triangle();
        let map = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert!(matches!(
            Covering::new(p, tri, map),
            Err(GraphError::NotACovering { .. })
        ));
    }

    #[test]
    fn quotient_collapses_partition() {
        let g = builders::complete(6);
        let classes = node_bound_partition(6, 2).unwrap();
        let (q, class_of) = quotient(&g, &classes).unwrap();
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.link_count(), 3); // triangle
        assert_eq!(class_of, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn quotient_rejects_non_partitions() {
        let g = builders::triangle();
        let overlapping = [
            [NodeId(0), NodeId(1)].into(),
            [NodeId(1)].into(),
            [NodeId(2)].into(),
        ];
        assert!(quotient(&g, &overlapping).is_err());
        let missing: [BTreeSet<NodeId>; 2] = [[NodeId(0)].into(), [NodeId(1)].into()];
        assert!(quotient(&g, &missing).is_err());
    }

    #[test]
    fn node_bound_partition_respects_f() {
        for (n, f) in [(3, 1), (5, 2), (6, 2), (9, 3), (4, 2)] {
            let classes = node_bound_partition(n, f).unwrap();
            let total: usize = classes.iter().map(BTreeSet::len).sum();
            assert_eq!(total, n);
            for c in &classes {
                assert!(!c.is_empty() && c.len() <= f, "n={n}, f={f}");
            }
        }
        // Adequate in node count: rejected.
        assert!(node_bound_partition(7, 2).is_err());
        assert!(node_bound_partition(4, 1).is_err());
    }

    #[test]
    fn double_cover_of_partitioned_k6() {
        // General case of §3.1: K6 with f = 2, classes of size 2.
        let g = builders::complete(6);
        let [a, _b, c] = node_bound_partition(6, 2).unwrap();
        let cov = Covering::double_cover_crossing(&g, &a, &c).unwrap();
        assert_eq!(cov.cover().node_count(), 12);
        assert!(cov.cover().is_connected());
        for s in cov.cover().nodes() {
            assert_eq!(cov.cover().degree(s), 5);
        }
    }
}
