//! Error type for graph construction and covering validation.

use std::fmt;

use crate::NodeId;

/// Errors produced by graph and covering constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint referred to a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        nodes: usize,
    },
    /// A link from a node to itself was requested; communication graphs are
    /// simple.
    SelfLoop {
        /// The node in question.
        node: NodeId,
    },
    /// A covering map failed local-isomorphism validation.
    NotACovering {
        /// Human-readable description of the first violation found.
        reason: String,
    },
    /// A partition passed to a cover construction was not a partition of the
    /// graph's nodes, or had empty classes.
    BadPartition {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// The requested construction needs parameters it was not given
    /// (e.g. a ring cover whose length is not a multiple of the base cycle).
    BadParameter {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self loop at {node} not allowed in a communication graph"
                )
            }
            GraphError::NotACovering { reason } => write!(f, "not a covering: {reason}"),
            GraphError::BadPartition { reason } => write!(f, "bad partition: {reason}"),
            GraphError::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = GraphError::SelfLoop { node: NodeId(3) };
        assert_eq!(
            e.to_string(),
            "self loop at n3 not allowed in a communication graph"
        );
    }
}
