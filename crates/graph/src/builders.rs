//! Constructions of the communication graphs used throughout the paper.

use crate::{Graph, NodeId};

/// The complete graph `K_n` — every pair of distinct nodes linked.
///
/// `complete(3)` is the paper's triangle graph of §3.1.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_link(NodeId(u), NodeId(v))
                .expect("complete graph links are in range");
        }
    }
    g
}

/// The cycle `C_n` with links `i — (i+1 mod n)`.
///
/// `cycle(4)` is the paper's 4-node connectivity example of §3.2, and
/// `cycle(4k)` / `cycle(k+2)` are the covering rings of §4–§7.
///
/// # Panics
///
/// Panics if `n < 3`; shorter cycles would need self-loops or parallel links.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    let mut g = Graph::new(n);
    for i in 0..n as u32 {
        g.add_link(NodeId(i), NodeId((i + 1) % n as u32))
            .expect("cycle links are in range");
    }
    g
}

/// The triangle graph (the complete graph on three nodes) of §3.1.
pub fn triangle() -> Graph {
    complete(3)
}

/// The path graph `P_n` with links `i — i+1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n as u32 {
        g.add_link(NodeId(i - 1), NodeId(i))
            .expect("path links are in range");
    }
    g
}

/// A graph from an explicit undirected link list over `n` nodes.
///
/// # Errors
///
/// Propagates [`crate::GraphError`] for out-of-range endpoints or self loops.
pub fn from_links(n: usize, links: &[(u32, u32)]) -> Result<Graph, crate::GraphError> {
    let mut g = Graph::new(n);
    for &(u, v) in links {
        g.add_link(NodeId(u), NodeId(v))?;
    }
    Ok(g)
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side,
/// `a..a+b` on the other. Its vertex connectivity is `min(a, b)` — handy for
/// exercising the connectivity bound with graphs that are not cycles.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a as u32 {
        for v in a as u32..(a + b) as u32 {
            g.add_link(NodeId(u), NodeId(v))
                .expect("bipartite links are in range");
        }
    }
    g
}

/// The wheel `W_n`: a cycle of `n - 1` rim nodes (`0..n-1`) plus a hub
/// (`n - 1`) linked to every rim node. Vertex connectivity 3 for `n ≥ 5`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes, got {n}");
    let rim = n - 1;
    let mut g = cycle_with_capacity(rim, n);
    let hub = NodeId(rim as u32);
    for i in 0..rim as u32 {
        g.add_link(hub, NodeId(i))
            .expect("wheel links are in range");
    }
    g
}

/// A cycle over `0..rim` inside a graph allocated with `total` nodes.
fn cycle_with_capacity(rim: usize, total: usize) -> Graph {
    assert!(rim >= 3 && total >= rim);
    let mut g = Graph::new(total);
    for i in 0..rim as u32 {
        g.add_link(NodeId(i), NodeId((i + 1) % rim as u32))
            .expect("cycle links are in range");
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` nodes, connectivity `d`).
pub fn hypercube(d: usize) -> Graph {
    assert!(d >= 1, "hypercube dimension must be at least 1");
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                g.add_link(NodeId(u as u32), NodeId(v as u32))
                    .expect("hypercube links are in range");
            }
        }
    }
    g
}

/// A deterministic pseudo-random connected graph on `n` nodes with roughly
/// `extra` links beyond a spanning random tree. Uses a fixed LCG keyed by
/// `seed` so test failures reproduce exactly.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: usize| -> usize {
        // xorshift64*; plenty for structural test data.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound as u64) as usize
    };
    let mut g = Graph::new(n);
    // Random spanning tree: attach each node to an earlier one.
    for v in 1..n {
        let u = next(v);
        g.add_link(NodeId(u as u32), NodeId(v as u32))
            .expect("tree links are in range");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 20 * extra + 100 {
        attempts += 1;
        let u = next(n);
        let v = next(n);
        if u != v && !g.has_link(NodeId(u as u32), NodeId(v as u32)) {
            g.add_link(NodeId(u as u32), NodeId(v as u32))
                .expect("extra links are in range");
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_degrees() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.link_count(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn triangle_is_k3() {
        assert_eq!(triangle(), complete(3));
    }

    #[test]
    fn cycle_degrees_are_two() {
        let g = cycle(7);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_link(NodeId(6), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_rejects_too_short() {
        cycle(2);
    }

    #[test]
    fn path_is_open() {
        let g = path(4);
        assert_eq!(g.link_count(), 3);
        assert!(!g.has_link(NodeId(3), NodeId(0)));
    }

    #[test]
    fn from_links_propagates_errors() {
        assert!(from_links(2, &[(0, 0)]).is_err());
        assert!(from_links(2, &[(0, 7)]).is_err());
        assert!(from_links(3, &[(0, 1), (1, 2)]).is_ok());
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.link_count(), 6);
        assert!(!g.has_link(NodeId(0), NodeId(1)));
        assert!(g.has_link(NodeId(0), NodeId(2)));
    }

    #[test]
    fn wheel_hub_touches_rim() {
        let g = wheel(6);
        let hub = NodeId(5);
        assert_eq!(g.degree(hub), 5);
        for i in 0..5 {
            assert_eq!(g.degree(NodeId(i)), 3);
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = random_connected(12, 6, 42);
        let b = random_connected(12, 6, 42);
        assert_eq!(a, b);
        assert!(a.is_connected());
    }
}
