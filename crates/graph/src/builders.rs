//! Constructions of the communication graphs used throughout the paper.

use crate::{Graph, NodeId};

/// The complete graph `K_n` — every pair of distinct nodes linked.
///
/// `complete(3)` is the paper's triangle graph of §3.1.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_link(NodeId(u), NodeId(v))
                .expect("complete graph links are in range");
        }
    }
    g
}

/// The cycle `C_n` with links `i — (i+1 mod n)`.
///
/// `cycle(4)` is the paper's 4-node connectivity example of §3.2, and
/// `cycle(4k)` / `cycle(k+2)` are the covering rings of §4–§7.
///
/// # Panics
///
/// Panics if `n < 3`; shorter cycles would need self-loops or parallel links.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    let mut g = Graph::new(n);
    for i in 0..n as u32 {
        g.add_link(NodeId(i), NodeId((i + 1) % n as u32))
            .expect("cycle links are in range");
    }
    g
}

/// The triangle graph (the complete graph on three nodes) of §3.1.
pub fn triangle() -> Graph {
    complete(3)
}

/// The path graph `P_n` with links `i — i+1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n as u32 {
        g.add_link(NodeId(i - 1), NodeId(i))
            .expect("path links are in range");
    }
    g
}

/// A graph from an explicit undirected link list over `n` nodes.
///
/// # Errors
///
/// Propagates [`crate::GraphError`] for out-of-range endpoints or self loops.
pub fn from_links(n: usize, links: &[(u32, u32)]) -> Result<Graph, crate::GraphError> {
    let mut g = Graph::new(n);
    for &(u, v) in links {
        g.add_link(NodeId(u), NodeId(v))?;
    }
    Ok(g)
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side,
/// `a..a+b` on the other. Its vertex connectivity is `min(a, b)` — handy for
/// exercising the connectivity bound with graphs that are not cycles.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a as u32 {
        for v in a as u32..(a + b) as u32 {
            g.add_link(NodeId(u), NodeId(v))
                .expect("bipartite links are in range");
        }
    }
    g
}

/// The wheel `W_n`: a cycle of `n - 1` rim nodes (`0..n-1`) plus a hub
/// (`n - 1`) linked to every rim node. Vertex connectivity 3 for `n ≥ 5`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes, got {n}");
    let rim = n - 1;
    let mut g = cycle_with_capacity(rim, n);
    let hub = NodeId(rim as u32);
    for i in 0..rim as u32 {
        g.add_link(hub, NodeId(i))
            .expect("wheel links are in range");
    }
    g
}

/// A cycle over `0..rim` inside a graph allocated with `total` nodes.
fn cycle_with_capacity(rim: usize, total: usize) -> Graph {
    assert!(rim >= 3 && total >= rim);
    let mut g = Graph::new(total);
    for i in 0..rim as u32 {
        g.add_link(NodeId(i), NodeId((i + 1) % rim as u32))
            .expect("cycle links are in range");
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` nodes, connectivity `d`).
pub fn hypercube(d: usize) -> Graph {
    assert!(d >= 1, "hypercube dimension must be at least 1");
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                g.add_link(NodeId(u as u32), NodeId(v as u32))
                    .expect("hypercube links are in range");
            }
        }
    }
    g
}

/// SplitMix64 — the seeded builders' mixing function. Pure, so every
/// builder below is a function of its arguments: same seed, same graph,
/// byte-identical adjacency.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-deterministic `d`-regular graph on `n` nodes.
///
/// Construction: start from the circulant `d`-regular graph (chords
/// `±1 .. ±d/2`, plus the diameter when `d` is odd), then apply
/// `n·d` seed-driven double-edge swaps — each swap exchanges the endpoints
/// of two links, rejecting self-loops and duplicates, so regularity is
/// preserved at every step. If the swapped graph ends up disconnected the
/// swaps are retried under a derived seed (bounded), falling back to the
/// plain circulant — so the result is always a connected `d`-regular graph
/// and always the same one for the same `(n, d, seed)`.
///
/// # Errors
///
/// Returns [`crate::GraphError::BadParameter`] when `d == 0`, `d ≥ n`, or
/// `n·d` is odd (no `d`-regular graph on `n` nodes exists).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, crate::GraphError> {
    let bad = |reason: String| crate::GraphError::BadParameter { reason };
    if d == 0 {
        return Err(bad("a random regular graph needs degree d ≥ 1".into()));
    }
    if d >= n {
        return Err(bad(format!(
            "degree {d} needs at least {} nodes, got {n}",
            d + 1
        )));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(bad(format!(
            "no {d}-regular graph on {n} nodes: n·d = {} is odd",
            n * d
        )));
    }
    let circulant = circulant_regular(n, d);
    for round in 0..8u64 {
        let g = swap_links(&circulant, n * d, seed ^ mix64(round));
        if g.is_connected() {
            return Ok(g);
        }
    }
    // The circulant itself is connected (it contains the cycle for d ≥ 2;
    // for d = 1, n = 2 is the only valid size and K2 is connected).
    Ok(circulant)
}

/// The circulant `d`-regular graph: node `i` links to `i ± 1 .. i ± d/2`
/// (mod `n`), plus `i + n/2` when `d` is odd (valid since `n·d` even forces
/// `n` even then).
fn circulant_regular(n: usize, d: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for k in 1..=(d / 2) {
            g.add_link(NodeId(i as u32), NodeId(((i + k) % n) as u32))
                .expect("circulant links are in range");
        }
        if d % 2 == 1 {
            g.add_link(NodeId(i as u32), NodeId(((i + n / 2) % n) as u32))
                .expect("diametric links are in range");
        }
    }
    g
}

/// Applies up to `swaps` seed-driven degree-preserving double-edge swaps.
fn swap_links(g: &Graph, swaps: usize, seed: u64) -> Graph {
    let mut links = g.links();
    for i in 0..swaps {
        let h = |k: u64| mix64(seed ^ ((i as u64) << 8) ^ k);
        let a = (h(1) % links.len() as u64) as usize;
        let b = (h(2) % links.len() as u64) as usize;
        if a == b {
            continue;
        }
        let (u1, v1) = links[a];
        let (u2, v2) = links[b];
        // Swap to (u1, u2), (v1, v2); normalize, reject loops/duplicates.
        let mut e1 = (u1.min(u2), u1.max(u2));
        let mut e2 = (v1.min(v2), v1.max(v2));
        if h(3) % 2 == 0 {
            e1 = (u1.min(v2), u1.max(v2));
            e2 = (v1.min(u2), v1.max(u2));
        }
        if e1.0 == e1.1 || e2.0 == e2.1 || e1 == e2 {
            continue;
        }
        let exists = |e: (NodeId, NodeId)| links.contains(&e);
        if exists(e1) || exists(e2) {
            continue;
        }
        links[a] = e1;
        links[b] = e2;
    }
    let mut out = Graph::new(g.node_count());
    for (u, v) in links {
        out.add_link(u, v).expect("swapped links stay in range");
    }
    out
}

/// A seed-deterministic 3-regular expander candidate: the cycle `C_n` plus
/// a seed-chosen perfect matching on its nodes (chords). The cycle
/// guarantees connectivity; the random matching supplies the long-range
/// chords that give the family its expansion in practice.
///
/// # Errors
///
/// Returns [`crate::GraphError::BadParameter`] when `n < 4` or `n` is odd
/// (a perfect matching needs an even node count).
pub fn expander(n: usize, seed: u64) -> Result<Graph, crate::GraphError> {
    let bad = |reason: String| crate::GraphError::BadParameter { reason };
    if n < 4 {
        return Err(bad(format!("an expander needs at least 4 nodes, got {n}")));
    }
    if !n.is_multiple_of(2) {
        return Err(bad(format!(
            "an expander matching needs an even node count, got {n}"
        )));
    }
    let mut g = cycle(n);
    // Seeded Fisher–Yates over the node list, then pair consecutive
    // entries. A pair that is already a cycle edge keeps the graph simple
    // (add_link is idempotent) but costs a chord; acceptable and still
    // deterministic.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (mix64(seed ^ 0xE8AD_DE57 ^ i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    for pair in order.chunks_exact(2) {
        if pair[0] != pair[1] {
            g.add_link(NodeId(pair[0]), NodeId(pair[1]))
                .expect("matching links are in range");
        }
    }
    Ok(g)
}

/// The ring `C_{base·weight}` presented as the `weight`-fold covering of
/// `C_base` — the paper's §4–§7 covering rings as a first-class, validated
/// family. The campaign sweeps use it for its giant rings (`weight` in the
/// hundreds), where the covering structure is what the ring refuters
/// exploit.
///
/// # Errors
///
/// Returns [`crate::GraphError::BadParameter`] when `base < 3` or
/// `weight == 0`.
pub fn ring_cover(base: usize, weight: usize) -> Result<Graph, crate::GraphError> {
    let bad = |reason: String| crate::GraphError::BadParameter { reason };
    if base < 3 {
        return Err(bad(format!(
            "a covering ring needs a base cycle of at least 3 nodes, got {base}"
        )));
    }
    if weight == 0 {
        return Err(bad("a covering ring needs weight ≥ 1".into()));
    }
    Ok(cycle(base * weight))
}

/// A deterministic pseudo-random connected graph on `n` nodes with roughly
/// `extra` links beyond a spanning random tree. Uses a fixed LCG keyed by
/// `seed` so test failures reproduce exactly.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: usize| -> usize {
        // xorshift64*; plenty for structural test data.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound as u64) as usize
    };
    let mut g = Graph::new(n);
    // Random spanning tree: attach each node to an earlier one.
    for v in 1..n {
        let u = next(v);
        g.add_link(NodeId(u as u32), NodeId(v as u32))
            .expect("tree links are in range");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 20 * extra + 100 {
        attempts += 1;
        let u = next(n);
        let v = next(n);
        if u != v && !g.has_link(NodeId(u as u32), NodeId(v as u32)) {
            g.add_link(NodeId(u as u32), NodeId(v as u32))
                .expect("extra links are in range");
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_degrees() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.link_count(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn triangle_is_k3() {
        assert_eq!(triangle(), complete(3));
    }

    #[test]
    fn cycle_degrees_are_two() {
        let g = cycle(7);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_link(NodeId(6), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_rejects_too_short() {
        cycle(2);
    }

    #[test]
    fn path_is_open() {
        let g = path(4);
        assert_eq!(g.link_count(), 3);
        assert!(!g.has_link(NodeId(3), NodeId(0)));
    }

    #[test]
    fn from_links_propagates_errors() {
        assert!(from_links(2, &[(0, 0)]).is_err());
        assert!(from_links(2, &[(0, 7)]).is_err());
        assert!(from_links(3, &[(0, 1), (1, 2)]).is_ok());
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.link_count(), 6);
        assert!(!g.has_link(NodeId(0), NodeId(1)));
        assert!(g.has_link(NodeId(0), NodeId(2)));
    }

    #[test]
    fn wheel_hub_touches_rim() {
        let g = wheel(6);
        let hub = NodeId(5);
        assert_eq!(g.degree(hub), 5);
        for i in 0..5 {
            assert_eq!(g.degree(NodeId(i)), 3);
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = random_connected(12, 6, 42);
        let b = random_connected(12, 6, 42);
        assert_eq!(a, b);
        assert!(a.is_connected());
    }

    #[test]
    fn random_regular_invariants_hold() {
        for (n, d) in [(6, 3), (8, 3), (10, 4), (12, 5), (16, 3), (2, 1)] {
            for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
                let g = random_regular(n, d, seed).unwrap();
                assert_eq!(g.node_count(), n, "n={n} d={d} seed={seed}");
                for v in g.nodes() {
                    assert_eq!(g.degree(v), d, "n={n} d={d} seed={seed} v={v:?}");
                }
                assert!(g.is_connected(), "n={n} d={d} seed={seed} disconnected");
            }
        }
    }

    #[test]
    fn random_regular_same_seed_byte_identical() {
        let a = random_regular(14, 3, 99).unwrap();
        let b = random_regular(14, 3, 99).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Different seeds should (for this size) actually shuffle links.
        let c = random_regular(14, 3, 100).unwrap();
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn random_regular_degenerate_parameters_are_structured_errors() {
        use crate::GraphError;
        // d == 0, d >= n, odd n·d: structured errors, not panics.
        for (n, d) in [(5, 0), (4, 4), (3, 5), (5, 3), (7, 1)] {
            assert!(
                matches!(
                    random_regular(n, d, 0),
                    Err(GraphError::BadParameter { .. })
                ),
                "random_regular({n}, {d}, 0) should be BadParameter"
            );
        }
    }

    #[test]
    fn expander_invariants_hold() {
        for n in [4usize, 6, 8, 16, 32] {
            for seed in [0u64, 3, 41] {
                let g = expander(n, seed).unwrap();
                assert_eq!(g.node_count(), n);
                assert!(g.is_connected());
                // Cycle plus a matching: degree between 2 (matched with a
                // cycle neighbor) and 3.
                for v in g.nodes() {
                    assert!((2..=3).contains(&g.degree(v)), "degree {}", g.degree(v));
                }
            }
        }
    }

    #[test]
    fn expander_same_seed_byte_identical() {
        let a = expander(16, 5).unwrap();
        let b = expander(16, 5).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn expander_degenerate_parameters_are_structured_errors() {
        use crate::GraphError;
        for n in [0usize, 2, 3, 5, 9] {
            assert!(
                matches!(expander(n, 0), Err(GraphError::BadParameter { .. })),
                "expander({n}, 0) should be BadParameter"
            );
        }
    }

    #[test]
    fn ring_cover_is_the_covering_ring() {
        let g = ring_cover(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_connected());
        assert_eq!(g.to_bytes(), cycle(12).to_bytes());
        use crate::GraphError;
        assert!(matches!(
            ring_cover(2, 5),
            Err(GraphError::BadParameter { .. })
        ));
        assert!(matches!(
            ring_cover(4, 0),
            Err(GraphError::BadParameter { .. })
        ));
    }
}
