//! The core [`Graph`] type: communication graphs with paired directed edges.

use std::collections::BTreeSet;
use std::fmt;

use crate::GraphError;

/// Identifier of a node in a [`Graph`].
///
/// Nodes of a graph with `n` nodes are always `NodeId(0) .. NodeId(n-1)`.
/// The newtype keeps node indices from being confused with ordinary counters
/// (rounds, ticks, fault budgets) in the rest of the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position when used as an index into per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A communication graph in the sense of FLM §2.
///
/// The paper models communication as a directed graph whose directed edges
/// occur in anti-parallel pairs: `(u, v)` is an edge iff `(v, u)` is. This
/// type enforces that invariant — [`Graph::add_link`] always inserts both
/// directions — while still letting the simulator treat each direction as an
/// independent channel with its own behavior.
///
/// Neighbor sets are stored as ordered sets so that all iteration (and hence
/// everything downstream: simulation, covering construction, refutation) is
/// deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `neighbors[v]` = ordered set of nodes adjacent to `v`.
    neighbors: Vec<BTreeSet<NodeId>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            neighbors: vec![BTreeSet::new(); n],
        }
    }

    /// Largest node count [`Graph::from_bytes`] will accept. Hostile byte
    /// streams can claim any `u32` node count in four bytes; capping it keeps
    /// the decoder's allocations proportional to honest inputs.
    pub const MAX_DECODED_NODES: usize = 1 << 16;

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected links (each counts as two directed edges).
    pub fn link_count(&self) -> usize {
        self.neighbors.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Iterator over all node ids in increasing order. The iterator does not
    /// borrow the graph, so it can drive mutation loops.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.neighbors.len() as u32).map(NodeId)
    }

    /// Adds the pair of directed edges `(u, v)` and `(v, u)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not a
    /// node of the graph, and [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.node_count();
        for w in [u, v] {
            if w.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: w, nodes: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.neighbors[u.index()].insert(v);
        self.neighbors[v.index()].insert(u);
        Ok(())
    }

    /// Encodes the graph into the canonical byte form read back by
    /// [`Graph::from_bytes`].
    ///
    /// Layout (all integers big-endian): node count as `u32`, link count as
    /// `u32`, then each undirected link as a `(u32, u32)` pair with
    /// `u < v`, sorted lexicographically. The link list is exactly
    /// [`Graph::links`], so equal graphs encode to identical bytes and the
    /// encoding is its own canonical form: `from_bytes` rejects any stream
    /// that `to_bytes` would not have produced.
    pub fn to_bytes(&self) -> Vec<u8> {
        let links = self.links();
        let mut out = Vec::with_capacity(8 + links.len() * 8);
        out.extend_from_slice(&(self.node_count() as u32).to_be_bytes());
        out.extend_from_slice(&(links.len() as u32).to_be_bytes());
        for (u, v) in links {
            out.extend_from_slice(&u.0.to_be_bytes());
            out.extend_from_slice(&v.0.to_be_bytes());
        }
        out
    }

    /// Decodes a graph from the canonical byte form of [`Graph::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadParameter`] if the stream is truncated, has
    /// trailing bytes, or is not canonical: every link must satisfy `u < v`,
    /// refer to in-range nodes, and the list must be strictly increasing in
    /// lexicographic order (which also rules out duplicates). Rejecting
    /// non-canonical streams makes `to_bytes ∘ from_bytes` the identity on
    /// bytes, which the certificate codec relies on for byte-identical
    /// re-encoding.
    ///
    /// The node count is additionally capped at [`Graph::MAX_DECODED_NODES`]:
    /// adjacency storage is allocated per node before any link is read, so an
    /// unchecked count would let a four-byte header demand gigabytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Graph, GraphError> {
        let malformed = |reason: String| GraphError::BadParameter { reason };
        let read_u32 = |at: usize| -> Result<u32, GraphError> {
            let chunk = bytes
                .get(at..at + 4)
                .ok_or_else(|| malformed(format!("graph bytes truncated at offset {at}")))?;
            Ok(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
        };
        let n = read_u32(0)?;
        if n as usize > Graph::MAX_DECODED_NODES {
            return Err(malformed(format!(
                "node count {n} exceeds the decode cap of {}",
                Graph::MAX_DECODED_NODES
            )));
        }
        let link_count = read_u32(4)? as usize;
        let expected_len = 8 + link_count * 8;
        if bytes.len() != expected_len {
            return Err(malformed(format!(
                "graph bytes length {} does not match {} links over {} nodes (expected {})",
                bytes.len(),
                link_count,
                n,
                expected_len
            )));
        }
        let mut g = Graph::new(n as usize);
        let mut previous: Option<(u32, u32)> = None;
        for i in 0..link_count {
            let u = read_u32(8 + i * 8)?;
            let v = read_u32(12 + i * 8)?;
            if u >= v {
                return Err(malformed(format!(
                    "link ({u}, {v}) is not in canonical u < v form"
                )));
            }
            if previous.is_some_and(|p| p >= (u, v)) {
                return Err(malformed(format!(
                    "link ({u}, {v}) breaks the canonical lexicographic order"
                )));
            }
            previous = Some((u, v));
            g.add_link(NodeId(u), NodeId(v))?;
        }
        Ok(g)
    }

    /// True if the anti-parallel edge pair between `u` and `v` is present.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors
            .get(u.index())
            .is_some_and(|s| s.contains(&v))
    }

    /// The ordered neighbor set of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of this graph.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors[v.index()].iter().copied()
    }

    /// Degree of `v` (number of neighbors).
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors[v.index()].len()
    }

    /// All directed edges `(u, v)`, lexicographically ordered.
    pub fn directed_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.link_count());
        for u in self.nodes() {
            for v in self.neighbors(u) {
                out.push((u, v));
            }
        }
        out
    }

    /// All undirected links `{u, v}` reported once with `u < v`.
    pub fn links(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.link_count());
        for u in self.nodes() {
            for v in self.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// The *inedge border* of a node set `U` (FLM §2): all directed edges
    /// from nodes outside `U` into `U`.
    pub fn inedge_border(&self, u_set: &BTreeSet<NodeId>) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &v in u_set {
            for w in self.neighbors(v) {
                if !u_set.contains(&w) {
                    out.push((w, v));
                }
            }
        }
        out.sort();
        out
    }

    /// Edges internal to a node set `U` (both endpoints in `U`), directed.
    pub fn internal_edges(&self, u_set: &BTreeSet<NodeId>) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &v in u_set {
            for w in self.neighbors(v) {
                if u_set.contains(&w) {
                    out.push((v, w));
                }
            }
        }
        out.sort();
        out
    }

    /// The subgraph induced by `U`, together with the mapping from new node
    /// ids (dense `0..|U|`) back to the original ids.
    pub fn induced_subgraph(&self, u_set: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>) {
        let order: Vec<NodeId> = u_set.iter().copied().collect();
        let mut sub = Graph::new(order.len());
        for (i, &v) in order.iter().enumerate() {
            for w in self.neighbors(v) {
                if let Ok(j) = order.binary_search(&w) {
                    if i < j {
                        sub.add_link(NodeId(i as u32), NodeId(j as u32))
                            .expect("indices are in range by construction");
                    }
                }
            }
        }
        (sub, order)
    }

    /// True if every pair of distinct nodes is linked.
    pub fn is_complete(&self) -> bool {
        let n = self.node_count();
        self.nodes().all(|v| self.degree(v) == n - 1)
    }

    /// True if the graph is connected (the empty graph is connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Connected components as sorted node sets, ordered by smallest member.
    pub fn components(&self) -> Vec<BTreeSet<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in self.nodes() {
            if seen[start.index()] {
                continue;
            }
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            seen[start.index()] = true;
            while let Some(v) = stack.pop() {
                comp.insert(v);
                for w in self.neighbors(v) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// Removes a set of nodes, returning the graph on the remaining nodes
    /// and the mapping from new ids to old ids.
    pub fn remove_nodes(&self, removed: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>) {
        let keep: BTreeSet<NodeId> = self.nodes().filter(|v| !removed.contains(v)).collect();
        self.induced_subgraph(&keep)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, links={:?})",
            self.node_count(),
            self.links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        let mut g = Graph::new(3);
        g.add_link(NodeId(0), NodeId(1)).unwrap();
        g.add_link(NodeId(1), NodeId(2)).unwrap();
        g
    }

    #[test]
    fn links_are_paired_directed_edges() {
        let g = path3();
        assert!(g.has_link(NodeId(0), NodeId(1)));
        assert!(g.has_link(NodeId(1), NodeId(0)));
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.directed_edges().len(), 4);
    }

    #[test]
    fn add_link_rejects_out_of_range_and_self_loops() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_link(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_link(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn add_link_is_idempotent() {
        let mut g = Graph::new(2);
        g.add_link(NodeId(0), NodeId(1)).unwrap();
        g.add_link(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn inedge_border_of_middle_node() {
        let g = path3();
        let u: BTreeSet<NodeId> = [NodeId(1)].into_iter().collect();
        assert_eq!(
            g.inedge_border(&u),
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(1))]
        );
    }

    #[test]
    fn internal_edges_of_pair() {
        let g = path3();
        let u: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        assert_eq!(
            g.internal_edges(&u),
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]
        );
    }

    #[test]
    fn induced_subgraph_renumbers_densely() {
        let g = path3();
        let u: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into_iter().collect();
        let (sub, order) = g.induced_subgraph(&u);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.link_count(), 0);
        assert_eq!(order, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn connectivity_queries() {
        let g = path3();
        assert!(g.is_connected());
        let removed: BTreeSet<NodeId> = [NodeId(1)].into_iter().collect();
        let (rest, _) = g.remove_nodes(&removed);
        assert!(!rest.is_connected());
        assert_eq!(rest.components().len(), 2);
    }

    #[test]
    fn completeness_check() {
        let mut g = Graph::new(3);
        g.add_link(NodeId(0), NodeId(1)).unwrap();
        g.add_link(NodeId(1), NodeId(2)).unwrap();
        assert!(!g.is_complete());
        g.add_link(NodeId(0), NodeId(2)).unwrap();
        assert!(g.is_complete());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new(0).is_connected());
        assert_eq!(Graph::new(0).components().len(), 0);
    }

    #[test]
    fn byte_roundtrip_is_identity() {
        for g in [Graph::new(0), Graph::new(5), path3()] {
            let bytes = g.to_bytes();
            let back = Graph::from_bytes(&bytes).unwrap();
            assert_eq!(back, g);
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let bytes = path3().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Graph::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(Graph::from_bytes(&extended).is_err());
    }

    #[test]
    fn decode_rejects_non_canonical_links() {
        let encode = |n: u32, links: &[(u32, u32)]| {
            let mut out = Vec::new();
            out.extend_from_slice(&n.to_be_bytes());
            out.extend_from_slice(&(links.len() as u32).to_be_bytes());
            for &(u, v) in links {
                out.extend_from_slice(&u.to_be_bytes());
                out.extend_from_slice(&v.to_be_bytes());
            }
            out
        };
        // Reversed endpoints, self loop, out-of-range node, duplicate link,
        // and out-of-order list are all non-canonical.
        for (n, links) in [
            (3, vec![(1u32, 0u32)]),
            (3, vec![(1, 1)]),
            (3, vec![(1, 3)]),
            (3, vec![(0, 1), (0, 1)]),
            (3, vec![(1, 2), (0, 1)]),
        ] {
            assert!(
                Graph::from_bytes(&encode(n, &links)).is_err(),
                "{links:?} must be rejected"
            );
        }
    }
}
