//! Graphviz (DOT) emitters regenerating the paper's figures.
//!
//! The paper's figures are small labeled graphs: the triangle with devices
//! `A`, `B`, `C`; the hexagon cover with inputs; the 4-cycle and its 8-node
//! cover; the long rings of §4–§7. These emitters reproduce them from the
//! live [`Graph`]/[`Covering`] objects so the artifacts in EXPERIMENTS.md
//! are generated, not hand-drawn.

use std::fmt::Write as _;

use crate::covering::Covering;
use crate::{Graph, NodeId};

/// Renders a graph in DOT format with optional per-node labels.
///
/// `label(v)` supplies the display label for node `v`; the default
/// (`None`) uses the node id. Undirected links are emitted once.
pub fn graph_to_dot(g: &Graph, name: &str, label: impl Fn(NodeId) -> Option<String>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  layout=circo;");
    for v in g.nodes() {
        let text = label(v).unwrap_or_else(|| v.to_string());
        let _ = writeln!(out, "  {} [label=\"{}\"];", v.0, text);
    }
    for (u, v) in g.links() {
        let _ = writeln!(out, "  {} -- {};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

/// Renders a covering as a DOT graph whose node labels show the projection:
/// cover node `s` is labeled `"<base>·<copy>"` where `<base>` is `φ(s)` and
/// `<copy>` distinguishes nodes in the same fiber.
pub fn covering_to_dot(cov: &Covering, name: &str) -> String {
    graph_to_dot(cov.cover(), name, |s| {
        let base = cov.project(s);
        let copy = cov
            .fiber(base)
            .iter()
            .position(|&t| t == s)
            .expect("s is in its own fiber");
        Some(format!("{base}·{copy}"))
    })
}

/// The paper's device-letter convention for the triangle: node 0 runs `A`,
/// node 1 runs `B`, node 2 runs `C`. Useful as a `label` closure for
/// [`graph_to_dot`] when regenerating §3 figures.
pub fn triangle_device_label(v: NodeId) -> Option<String> {
    Some(
        match v.0 {
            0 => "A",
            1 => "B",
            2 => "C",
            _ => return None,
        }
        .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use std::collections::BTreeSet;

    #[test]
    fn triangle_dot_has_three_links() {
        let dot = graph_to_dot(&builders::triangle(), "G", triangle_device_label);
        assert!(dot.contains("graph G {"));
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("label=\"A\""));
    }

    #[test]
    fn hexagon_dot_labels_fibers() {
        let tri = builders::triangle();
        let a: BTreeSet<NodeId> = [NodeId(0)].into();
        let c: BTreeSet<NodeId> = [NodeId(2)].into();
        let cov = Covering::double_cover_crossing(&tri, &a, &c).unwrap();
        let dot = covering_to_dot(&cov, "S");
        assert_eq!(dot.matches(" -- ").count(), 6);
        assert!(dot.contains("n0·0"));
        assert!(dot.contains("n0·1"));
    }

    #[test]
    fn default_labels_are_node_ids() {
        let dot = graph_to_dot(&builders::path(3), "P", |_| None);
        assert!(dot.contains("label=\"n1\""));
    }
}
