//! Vertex connectivity via Menger's theorem.
//!
//! The paper's bounds are stated in terms of the *connectivity* of the
//! communication graph: the minimum number of nodes whose removal
//! disconnects it. This module computes that quantity exactly by max-flow on
//! the node-split graph (each node becomes an `in`/`out` pair joined by a
//! unit-capacity arc), extracts minimum vertex cuts (the `b`/`d` sets of the
//! §3.2 construction), and extracts systems of internally vertex-disjoint
//! paths (the substrate for the Dolev-style relay overlay in
//! `flm-protocols`).

use std::collections::BTreeSet;

use crate::{Graph, NodeId};

/// Effectively-infinite capacity for the flow network. Any value larger than
/// `n` works, since no vertex cut can exceed `n` nodes.
const INF: u32 = u32::MAX / 4;

/// A directed flow network with residual-edge bookkeeping.
struct FlowNet {
    /// `adj[v]` = indices into `edges` of arcs leaving `v`.
    adj: Vec<Vec<usize>>,
    /// Arcs stored as (to, capacity); arc `i ^ 1` is the reverse of arc `i`.
    edges: Vec<(usize, u32)>,
}

impl FlowNet {
    fn new(n: usize) -> Self {
        FlowNet {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: u32) {
        self.adj[from].push(self.edges.len());
        self.edges.push((to, cap));
        self.adj[to].push(self.edges.len());
        self.edges.push((from, 0));
    }

    /// Edmonds–Karp max flow. Unit-ish capacities keep this fast for the
    /// graph sizes the refuters and relay overlay use.
    fn max_flow(&mut self, s: usize, t: usize) -> u32 {
        let mut flow = 0;
        loop {
            // BFS for a shortest augmenting path.
            let mut pred: Vec<Option<usize>> = vec![None; self.adj.len()];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            // Mark s reached via a sentinel.
            pred[s] = Some(usize::MAX);
            while let Some(v) = queue.pop_front() {
                if v == t {
                    break;
                }
                for &e in &self.adj[v] {
                    let (to, cap) = self.edges[e];
                    if cap > 0 && pred[to].is_none() {
                        pred[to] = Some(e);
                        queue.push_back(to);
                    }
                }
            }
            if pred[t].is_none() {
                return flow;
            }
            // Find bottleneck.
            let mut bottleneck = u32::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path exists");
                bottleneck = bottleneck.min(self.edges[e].1);
                v = self.edges[e ^ 1].0;
            }
            // Augment.
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path exists");
                self.edges[e].1 -= bottleneck;
                self.edges[e ^ 1].1 += bottleneck;
                v = self.edges[e ^ 1].0;
            }
            flow += bottleneck;
        }
    }

    /// Nodes reachable from `s` in the residual graph (after `max_flow`).
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &e in &self.adj[v] {
                let (to, cap) = self.edges[e];
                if cap > 0 && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }
}

/// Builds the node-split flow network for vertex connectivity between `s`
/// and `t`: node `v` becomes `v_in = 2v`, `v_out = 2v + 1` with a
/// unit-capacity internal arc (infinite for `s` and `t`), and each directed
/// edge `(u, v)` of `g` becomes an infinite-capacity arc `u_out → v_in`.
fn split_network(g: &Graph, s: NodeId, t: NodeId) -> FlowNet {
    let n = g.node_count();
    let mut net = FlowNet::new(2 * n);
    for v in g.nodes() {
        let cap = if v == s || v == t { INF } else { 1 };
        net.add_arc(2 * v.index(), 2 * v.index() + 1, cap);
    }
    for (u, v) in g.directed_edges() {
        // A direct s–t link is a path no vertex cut can break; give it unit
        // capacity so it contributes exactly one disjoint path instead of
        // unbounded flow.
        let direct = (u == s && v == t) || (u == t && v == s);
        net.add_arc(
            2 * u.index() + 1,
            2 * v.index(),
            if direct { 1 } else { INF },
        );
    }
    net
}

/// The maximum number of internally vertex-disjoint paths from `s` to `t`.
///
/// By Menger's theorem this equals the minimum number of nodes (other than
/// `s`, `t`) whose removal separates `t` from `s` — provided `s` and `t` are
/// not adjacent. For adjacent `s`, `t` the direct link contributes one path
/// that no cut can break, and the returned count includes it.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn local_connectivity(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "local connectivity needs distinct endpoints");
    let mut net = split_network(g, s, t);
    net.max_flow(2 * s.index() + 1, 2 * t.index()) as usize
}

/// The vertex connectivity κ(G): the minimum number of nodes whose removal
/// disconnects the graph, with κ(K_n) = n − 1 by convention.
///
/// Disconnected graphs have κ = 0; the empty and one-node graphs have κ = 0
/// and the two-node linked graph κ = 1 (complete-graph convention).
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    if !g.is_connected() {
        return 0;
    }
    // Complete graph: no non-adjacent pair exists.
    if g.is_complete() {
        return n - 1;
    }
    // κ = min over non-adjacent pairs of local connectivity. It suffices to
    // scan pairs (s, t) where s ranges over a dominating prefix, but graphs
    // here are small; the full non-adjacent scan keeps the code obviously
    // correct.
    let mut best = usize::MAX;
    for s in g.nodes() {
        for t in g.nodes() {
            if s < t && !g.has_link(s, t) {
                best = best.min(local_connectivity(g, s, t));
            }
        }
    }
    best
}

/// A minimum vertex cut separating `t` from `s` (excluding `s` and `t`),
/// extracted from the max-flow residual graph: the cut consists of the nodes
/// whose internal split arc crosses the saturated cut.
///
/// # Panics
///
/// Panics if `s == t` or if `s` and `t` are adjacent (no vertex cut can
/// separate adjacent nodes).
pub fn min_vertex_cut_between(g: &Graph, s: NodeId, t: NodeId) -> BTreeSet<NodeId> {
    assert_ne!(s, t, "cut needs distinct endpoints");
    assert!(
        !g.has_link(s, t),
        "no vertex cut separates adjacent nodes {s} and {t}"
    );
    let mut net = split_network(g, s, t);
    net.max_flow(2 * s.index() + 1, 2 * t.index());
    let reach = net.residual_reachable(2 * s.index() + 1);
    let mut cut = BTreeSet::new();
    for v in g.nodes() {
        // Internal arc v_in -> v_out crosses the cut iff v_in is reachable
        // and v_out is not.
        if reach[2 * v.index()] && !reach[2 * v.index() + 1] {
            cut.insert(v);
        }
    }
    cut
}

/// A global minimum vertex cut of a connected, non-complete graph, together
/// with a pair `(s, t)` it separates.
///
/// Returns `None` for complete or disconnected graphs, where no such cut
/// exists or it is trivial.
pub fn min_vertex_cut(g: &Graph) -> Option<(BTreeSet<NodeId>, NodeId, NodeId)> {
    let n = g.node_count();
    if n == 0 || !g.is_connected() {
        return None;
    }
    if g.is_complete() {
        return None;
    }
    let mut best: Option<(BTreeSet<NodeId>, NodeId, NodeId)> = None;
    for s in g.nodes() {
        for t in g.nodes() {
            if s < t && !g.has_link(s, t) {
                let cut = min_vertex_cut_between(g, s, t);
                if best.as_ref().is_none_or(|(b, _, _)| cut.len() < b.len()) {
                    best = Some((cut, s, t));
                }
            }
        }
    }
    best
}

/// Extracts a maximum system of internally vertex-disjoint `s`–`t` paths.
///
/// Each returned path starts with `s` and ends with `t`; intermediate nodes
/// are pairwise disjoint across paths. The number of paths equals
/// [`local_connectivity`]. This is the routing substrate for the relay
/// overlay (`flm-protocols::relay`).
///
/// # Panics
///
/// Panics if `s == t`.
pub fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "paths need distinct endpoints");
    let mut net = split_network(g, s, t);
    let flow = net.max_flow(2 * s.index() + 1, 2 * t.index());
    // Decompose the flow into paths by walking saturated forward arcs.
    // Flow on a forward arc i (even index into `edges` pairs ordered as we
    // added them) = capacity moved to its reverse arc.
    let n = g.node_count();
    // flow_out[v] = list of w with unit flow v_out -> w_in remaining.
    let mut flow_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Reconstruct per-arc flow: arcs were added in order: n internal arcs
    // (indices 0..2n step 2), then edge arcs.
    let internal_arcs = n;
    let mut idx = 2 * internal_arcs;
    for (u, v) in g.directed_edges() {
        let used = net.edges[idx + 1].1; // reverse capacity == flow pushed
        if used > 0 {
            for _ in 0..used {
                flow_edges[u.index()].push(v.index());
            }
        }
        idx += 2;
    }
    let mut paths = Vec::with_capacity(flow as usize);
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s.index();
        // Each intermediate node has unit internal capacity so carries at
        // most one unit of flow; walking arbitrary outgoing flow edges from s
        // yields disjoint paths. Cancelling 2-cycles cannot occur because
        // Edmonds–Karp never creates flow on both directions of a link.
        while cur != t.index() {
            let nxt = flow_edges[cur]
                .pop()
                .expect("flow conservation guarantees an outgoing flow edge");
            path.push(NodeId(nxt as u32));
            cur = nxt;
        }
        paths.push(path);
    }
    paths
}

/// Brute-force vertex connectivity by trying all node subsets in increasing
/// size order. Exponential; only for cross-checking [`vertex_connectivity`]
/// in tests on small graphs.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes (bitmask enumeration).
pub fn vertex_connectivity_brute(g: &Graph) -> usize {
    let n = g.node_count();
    assert!(n <= 20, "brute-force connectivity is for small test graphs");
    if n == 0 || !g.is_connected() {
        return 0;
    }
    if g.is_complete() {
        return n - 1;
    }
    for k in 1..n - 1 {
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let removed: BTreeSet<NodeId> = (0..n as u32)
                .filter(|i| mask & (1 << i) != 0)
                .map(NodeId)
                .collect();
            let (rest, _) = g.remove_nodes(&removed);
            if rest.node_count() >= 2 && !rest.is_connected() {
                return k;
            }
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_has_connectivity_two() {
        for n in 3..9 {
            assert_eq!(vertex_connectivity(&builders::cycle(n)), 2, "C_{n}");
        }
    }

    #[test]
    fn complete_has_connectivity_n_minus_one() {
        for n in 2..7 {
            assert_eq!(vertex_connectivity(&builders::complete(n)), n - 1, "K_{n}");
        }
    }

    #[test]
    fn path_has_connectivity_one() {
        assert_eq!(vertex_connectivity(&builders::path(5)), 1);
    }

    #[test]
    fn bipartite_connectivity_is_min_side() {
        assert_eq!(vertex_connectivity(&builders::complete_bipartite(2, 5)), 2);
        assert_eq!(vertex_connectivity(&builders::complete_bipartite(3, 3)), 3);
    }

    #[test]
    fn wheel_connectivity_is_three() {
        assert_eq!(vertex_connectivity(&builders::wheel(7)), 3);
    }

    #[test]
    fn hypercube_connectivity_is_dimension() {
        for d in 1..4 {
            assert_eq!(vertex_connectivity(&builders::hypercube(d)), d);
        }
    }

    #[test]
    fn disconnected_graph_has_connectivity_zero() {
        let g = builders::from_links(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn cut_of_cycle4_is_the_opposite_pair() {
        let g = builders::cycle(4);
        let cut = min_vertex_cut_between(&g, NodeId(0), NodeId(2));
        assert_eq!(cut, [NodeId(1), NodeId(3)].into_iter().collect());
    }

    #[test]
    fn global_min_cut_matches_kappa() {
        for g in [
            builders::cycle(6),
            builders::path(5),
            builders::complete_bipartite(2, 4),
            builders::wheel(6),
        ] {
            let kappa = vertex_connectivity(&g);
            let (cut, s, t) = min_vertex_cut(&g).expect("non-complete connected graph");
            assert_eq!(cut.len(), kappa);
            assert!(!cut.contains(&s) && !cut.contains(&t));
            let (rest, order) = g.remove_nodes(&cut);
            // s and t must land in different components.
            let comps = rest.components();
            let pos = |x: NodeId| order.iter().position(|&v| v == x).unwrap() as u32;
            let cs = comps
                .iter()
                .position(|c| c.contains(&NodeId(pos(s))))
                .unwrap();
            let ct = comps
                .iter()
                .position(|c| c.contains(&NodeId(pos(t))))
                .unwrap();
            assert_ne!(cs, ct, "cut must separate s from t");
        }
    }

    #[test]
    fn disjoint_paths_are_disjoint_and_maximal() {
        let g = builders::complete_bipartite(3, 3);
        let s = NodeId(0);
        let t = NodeId(1); // both on side A, non-adjacent
        let paths = vertex_disjoint_paths(&g, s, t);
        assert_eq!(paths.len(), local_connectivity(&g, s, t));
        assert_eq!(paths.len(), 3);
        let mut seen = BTreeSet::new();
        for p in &paths {
            assert_eq!(p.first(), Some(&s));
            assert_eq!(p.last(), Some(&t));
            for w in &p[1..p.len() - 1] {
                assert!(seen.insert(*w), "interior node {w} reused across paths");
                // Consecutive hops must be actual links.
            }
            for pair in p.windows(2) {
                assert!(g.has_link(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn disjoint_paths_on_adjacent_pair_include_direct_link() {
        let g = builders::complete(4);
        let paths = vertex_disjoint_paths(&g, NodeId(0), NodeId(1));
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn flow_matches_brute_force_on_assorted_graphs() {
        for (i, g) in [
            builders::cycle(5),
            builders::path(4),
            builders::complete(4),
            builders::complete_bipartite(2, 3),
            builders::wheel(5),
            builders::random_connected(7, 4, 1),
            builders::random_connected(7, 4, 2),
            builders::random_connected(8, 2, 3),
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(
                vertex_connectivity(&g),
                vertex_connectivity_brute(&g),
                "graph #{i}"
            );
        }
    }
}
