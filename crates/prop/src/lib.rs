//! A self-contained deterministic property-testing harness.
//!
//! The workspace's property suites need nothing more than "run this check a
//! few dozen times over seed-derived pseudo-random inputs, and say which
//! case failed". This crate provides exactly that, with zero external
//! dependencies, so the whole workspace builds offline. Every case is fully
//! determined by `(base_seed, case index)` — a failure report names the
//! case seed, and re-running with [`cases_from`] on that seed reproduces it.
//!
//! # Example
//!
//! ```
//! flm_prop::cases(32, 0xF00D, |rng| {
//!     let n = rng.usize(3..8);
//!     assert!(n >= 3 && n < 8);
//!     let x = rng.u64();
//!     assert_eq!(x.wrapping_add(1).wrapping_sub(1), x);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64: the finalizer used throughout the workspace for seed-derived
/// determinism. Passes the usual avalanche tests; plenty for test-case
/// generation (this is not a cryptographic generator).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 pseudo-random bits.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// A pseudo-random byte.
    pub fn byte(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// A pseudo-random bool.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A `usize` uniform in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let width = (range.end - range.start) as u64;
        range.start + (self.u64() % width) as usize
    }

    /// A `u64` uniform in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.u64() % (range.end - range.start)
    }

    /// An `i32` uniform in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn i32(&mut self, range: Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let width = (i64::from(range.end) - i64::from(range.start)) as u64;
        range.start.wrapping_add((self.u64() % width) as i32)
    }

    /// An `f64` uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A pseudo-random byte vector with length in `len` (half-open).
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        let n = self.usize(len);
        (0..n).map(|_| self.byte()).collect()
    }
}

/// The per-case seed for case `i` under `base_seed` — what a failure report
/// prints, and what [`cases_from`] accepts to replay one case.
pub fn case_seed(base_seed: u64, i: u32) -> u64 {
    let mut r = Rng::new(base_seed ^ (u64::from(i) << 32));
    r.u64()
}

/// Runs `check` for `n` seed-derived cases. On a failing case the panic is
/// re-raised with the case index and seed reported on stderr, so the case
/// can be replayed in isolation with [`cases_from`].
pub fn cases(n: u32, base_seed: u64, check: impl Fn(&mut Rng)) {
    for i in 0..n {
        let seed = case_seed(base_seed, i);
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| check(&mut rng))) {
            eprintln!("flm-prop: case {i}/{n} failed (base_seed={base_seed:#x}, case_seed={seed:#x}); replay with flm_prop::cases_from({seed:#x}, ..)");
            resume_unwind(payload);
        }
    }
}

/// Runs `check` for `n` seed-derived cases across the `flm-par` worker
/// pool. Each case sees exactly the stream [`cases`] would give it — the
/// stream depends only on `(base_seed, index)`, never on the schedule — and
/// when several cases fail, the lowest-indexed failure is the one reported
/// and re-raised, matching the sequential runner byte for byte.
pub fn cases_par(n: u32, base_seed: u64, check: impl Fn(&mut Rng) + Sync) {
    let outcomes = flm_par::par_map((0..n).collect::<Vec<u32>>(), |i| {
        let seed = case_seed(base_seed, i);
        let mut rng = Rng::new(seed);
        catch_unwind(AssertUnwindSafe(|| check(&mut rng))).map_err(|payload| (i, seed, payload))
    });
    for outcome in outcomes {
        if let Err((i, seed, payload)) = outcome {
            eprintln!("flm-prop: case {i}/{n} failed (base_seed={base_seed:#x}, case_seed={seed:#x}); replay with flm_prop::cases_from({seed:#x}, ..)");
            resume_unwind(payload);
        }
    }
}

/// Replays a single case from its reported seed.
pub fn cases_from(case_seed: u64, check: impl Fn(&mut Rng)) {
    let mut rng = Rng::new(case_seed);
    check(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        assert_ne!(Rng::new(7).u64(), Rng::new(8).u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(42);
        for _ in 0..1000 {
            let x = rng.usize(3..8);
            assert!((3..8).contains(&x));
            let y = rng.range_u64(10..11);
            assert_eq!(y, 10);
            let z = rng.i32(-3..3);
            assert!((-3..3).contains(&z));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bytes_length_in_range() {
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let b = rng.bytes(0..5);
            assert!(b.len() < 5);
        }
    }

    #[test]
    fn cases_run_the_requested_count() {
        use std::cell::Cell;
        let count = Cell::new(0u32);
        cases(17, 3, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn cases_par_runs_the_requested_count() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let count = AtomicU32::new(0);
        cases_par(17, 3, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn cases_par_sees_the_sequential_streams() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        cases_par(8, 0xBEEF, |rng| {
            let v = rng.u64();
            seen.lock().unwrap().push(v);
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let mut expected: Vec<u64> = (0..8)
            .map(|i| Rng::new(case_seed(0xBEEF, i)).u64())
            .collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn cases_par_reports_the_lowest_failing_case() {
        let caught = std::panic::catch_unwind(|| {
            cases_par(32, 7, |rng| {
                let tag = rng.u64();
                // Roughly half the cases fail; index order decides the winner.
                assert!(tag.is_multiple_of(2), "odd tag {tag:#x}");
            });
        });
        let payload = caught.expect_err("some tags are odd");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        let first_odd = (0..32)
            .map(|i| Rng::new(case_seed(7, i)).u64())
            .find(|t| !t.is_multiple_of(2))
            .expect("some odd tag in 32 cases");
        assert_eq!(msg, format!("odd tag {first_odd:#x}"));
    }

    #[test]
    fn case_replay_matches() {
        // The stream a case sees is fully determined by its case seed.
        let seed = case_seed(99, 5);
        let mut direct = Rng::new(seed);
        let expect = (direct.u64(), direct.usize(0..100));
        cases_from(seed, |rng| {
            assert_eq!((rng.u64(), rng.usize(0..100)), expect);
        });
    }
}
