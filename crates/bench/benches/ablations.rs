//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **General node bound, two proof paths**: the direct partitioned double
//!   cover vs. the footnote-3 collapse to the triangle. Same theorem, very
//!   different apparatus — the collapse simulates whole classes inside
//!   super-devices, trading graph size for device complexity.
//! * **Weak agreement, general case**: direct crossed cyclic cover
//!   (`m` copies of G) vs. collapse-then-ring.
//! * **Relay path budget**: routing over `2f+1` disjoint paths (correct) is
//!   compared against the protocol run directly on the complete graph — the
//!   price of surviving a thin topology.

use flm_bench::harness::Harness;
use flm_bench::protocols_under_test::EigUnderTest;
use flm_core::reduction::collapse_for_node_bound;
use flm_core::refute;
use flm_graph::builders;
use flm_protocols::{Eig, WeakViaBa};
use flm_sim::{Device, Protocol};
use std::hint::black_box;

struct AsIs<P: Protocol>(P);

impl<P: Protocol> Protocol for AsIs<P> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn device(&self, g: &flm_graph::Graph, v: flm_graph::NodeId) -> Box<dyn Device> {
        self.0.device(g, v)
    }
    fn horizon(&self, g: &flm_graph::Graph) -> u32 {
        self.0.horizon(g)
    }
}

fn bench_node_bound_paths(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_node_bound_k6_f2");
    let g = builders::complete(6);
    group.bench_function("direct_double_cover", |b| {
        let proto = EigUnderTest { f: 2 };
        b.iter(|| refute::ba_nodes(black_box(&proto), &g, 2).unwrap())
    });
    group.bench_function("collapse_then_triangle", |b| {
        b.iter(|| {
            let collapsed = collapse_for_node_bound(Eig::new(2), &g, 2).unwrap();
            let tri = collapsed.quotient_graph().clone();
            refute::ba_nodes(black_box(&collapsed), &tri, 1).unwrap()
        })
    });
    group.finish();
}

fn bench_weak_general_paths(h: &mut Harness) {
    let mut group = h.benchmark_group("ablation_weak_general_k5_f2");
    let g = builders::complete(5);
    group.bench_function("direct_crossed_cyclic_cover", |b| {
        let proto = AsIs(WeakViaBa::new(2));
        b.iter(|| refute::weak_agreement_direct_general(black_box(&proto), &g, 2).unwrap())
    });
    group.bench_function("collapse_then_ring", |b| {
        b.iter(|| {
            let (cert, _collapsed) =
                refute::weak_agreement_general(WeakViaBa::new(2), black_box(&g), 2).unwrap();
            cert
        })
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new().sample_size(15);
    bench_node_bound_paths(&mut h);
    bench_weak_general_paths(&mut h);
}
