//! Benches for the protocols (experiment E11): the cost of the
//! matching upper bounds, including the EIG blow-up in `f` and the relay
//! overlay's overhead on sparse adequate graphs.

use flm_bench::harness::Harness;
use flm_graph::{builders, NodeId};
use flm_protocols::{testkit, Dlpsw, DolevStrong, Eig, PhaseKing, Relayed};
use flm_sim::{Input, Protocol};
use std::hint::black_box;

fn honest_inputs(v: NodeId) -> Input {
    Input::Bool(v.0.is_multiple_of(2))
}

fn bench_ba_protocols(h: &mut Harness) {
    let mut group = h.benchmark_group("E11_byzantine_agreement");
    group.bench_function("eig_k4_f1", |b| {
        let g = builders::complete(4);
        let p = Eig::new(1);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.bench_function("eig_k7_f2", |b| {
        let g = builders::complete(7);
        let p = Eig::new(2);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.bench_function("phase_king_k5_f1", |b| {
        let g = builders::complete(5);
        let p = PhaseKing::new(1);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.bench_function("phase_king_k9_f2", |b| {
        let g = builders::complete(9);
        let p = PhaseKing::new(2);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.bench_function("dolev_strong_k3_f1", |b| {
        let g = builders::triangle();
        let p = DolevStrong::new(1, 7);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.finish();
}

fn bench_relay(h: &mut Harness) {
    let mut group = h.benchmark_group("E11_relay_overhead");
    let mut links = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            if (u, v) != (0, 4) {
                links.push((u, v));
            }
        }
    }
    let sparse = builders::from_links(5, &links).unwrap();
    group.bench_function("eig_k5_direct", |b| {
        let g = builders::complete(5);
        let p = Eig::new(1);
        b.iter(|| testkit::run_honest(black_box(&p), &g, &honest_inputs))
    });
    group.bench_function("eig_k5_minus_edge_relayed", |b| {
        let p = Relayed::new(Eig::new(1), 1);
        b.iter(|| testkit::run_honest(black_box(&p), &sparse, &honest_inputs))
    });
    group.bench_function("relay_route_construction", |b| {
        let p = Relayed::new(Eig::new(1), 1);
        b.iter(|| p.horizon(black_box(&sparse)))
    });
    group.finish();
}

fn bench_approx_protocol(h: &mut Harness) {
    let mut group = h.benchmark_group("E11_approx");
    for rounds in [2u32, 5, 10] {
        group.bench_function(format!("dlpsw_k4_r{rounds}"), |b| {
            let g = builders::complete(4);
            let p = Dlpsw::new(1, rounds);
            b.iter(|| {
                testkit::run_honest(black_box(&p), &g, &|v: NodeId| Input::Real(f64::from(v.0)))
            })
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    bench_ba_protocols(&mut h);
    bench_relay(&mut h);
    bench_approx_protocol(&mut h);
}
