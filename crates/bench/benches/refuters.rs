//! Benches for the refuters — the cost of executing each
//! impossibility proof (experiments E1–E8).

use flm_bench::harness::Harness;
use flm_bench::protocols_under_test::{EigUnderTest, NaiveUnderTest, TableUnderTest};
use flm_core::problems::ClockSyncClaim;
use flm_core::refute;
use flm_graph::builders;
use flm_protocols::clock_sync::TrivialClockSync;
use flm_sim::clock::TimeFn;
use std::hint::black_box;

fn bench_ba_nodes(h: &mut Harness) {
    let mut group = h.benchmark_group("E1_ba_nodes");
    group.bench_function("triangle_f1_eig", |b| {
        let g = builders::triangle();
        let proto = EigUnderTest { f: 1 };
        b.iter(|| refute::ba_nodes(black_box(&proto), &g, 1).unwrap())
    });
    group.bench_function("k5_f2_eig", |b| {
        let g = builders::complete(5);
        let proto = EigUnderTest { f: 2 };
        b.iter(|| refute::ba_nodes(black_box(&proto), &g, 2).unwrap())
    });
    group.bench_function("k6_f2_eig", |b| {
        let g = builders::complete(6);
        let proto = EigUnderTest { f: 2 };
        b.iter(|| refute::ba_nodes(black_box(&proto), &g, 2).unwrap())
    });
    group.bench_function("triangle_f1_verify", |b| {
        let g = builders::triangle();
        let proto = EigUnderTest { f: 1 };
        let cert = refute::ba_nodes(&proto, &g, 1).unwrap();
        b.iter(|| cert.verify(black_box(&proto)).unwrap())
    });
    group.finish();
}

fn bench_ba_connectivity(h: &mut Harness) {
    let mut group = h.benchmark_group("E2_ba_connectivity");
    for n in [4usize, 6, 8, 10] {
        group.bench_function(format!("cycle{n}_f1"), |b| {
            let g = builders::cycle(n);
            b.iter(|| refute::ba_connectivity(black_box(&NaiveUnderTest), &g, 1).unwrap())
        });
    }
    group.bench_function("k3x4_f2", |b| {
        let g = builders::complete_bipartite(3, 4);
        b.iter(|| refute::ba_connectivity(black_box(&NaiveUnderTest), &g, 2).unwrap())
    });
    group.finish();
}

fn bench_rings(h: &mut Harness) {
    let mut group = h.benchmark_group("E3_E4_rings");
    group.bench_function("weak_agreement_table", |b| {
        let g = builders::triangle();
        let proto = TableUnderTest { seed: 11 };
        b.iter(|| refute::weak_agreement(black_box(&proto), &g, 1).unwrap())
    });
    group.finish();
}

fn bench_approx(h: &mut Harness) {
    let mut group = h.benchmark_group("E5_E6_approx");
    group.bench_function("simple_approx_table", |b| {
        let g = builders::triangle();
        let proto = TableUnderTest { seed: 13 };
        b.iter(|| refute::simple_approx(black_box(&proto), &g, 1).unwrap())
    });
    for gamma in [0.5, 2.0, 4.0] {
        group.bench_function(format!("eps_delta_gamma_g{gamma}"), |b| {
            let g = builders::triangle();
            let proto = TableUnderTest { seed: 13 };
            b.iter(|| refute::eps_delta_gamma(black_box(&proto), &g, 1, 0.5, 1.0, gamma).unwrap())
        });
    }
    group.finish();
}

fn bench_clocks(h: &mut Harness) {
    let mut group = h.benchmark_group("E7_E8_clocks");
    for alpha in [4.0, 1.0] {
        group.bench_function(format!("clock_sync_alpha{alpha}"), |b| {
            let proto = TrivialClockSync {
                l: TimeFn::identity(),
            };
            let claim = ClockSyncClaim {
                p: TimeFn::identity(),
                q: TimeFn::linear(2.0),
                l: TimeFn::identity(),
                u: TimeFn::affine(2.0, 6.0),
                alpha,
                t_prime: 1.0,
            };
            let g = builders::triangle();
            b.iter(|| refute::clock_sync(black_box(&proto), &g, 1, &claim).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    bench_ba_nodes(&mut h);
    bench_ba_connectivity(&mut h);
    bench_rings(&mut h);
    bench_approx(&mut h);
    bench_clocks(&mut h);
}
