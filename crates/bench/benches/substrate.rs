//! Benches for the substrates: vertex connectivity, covering
//! construction/validation, disjoint-path extraction, and the simulator's
//! raw stepping rate.

use flm_bench::harness::Harness;
use flm_graph::covering::Covering;
use flm_graph::{builders, connectivity, NodeId};
use flm_sim::devices::TableDevice;
use flm_sim::{Input, System};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_connectivity(h: &mut Harness) {
    let mut group = h.benchmark_group("substrate_connectivity");
    for n in [8usize, 16, 32] {
        let g = builders::random_connected(n, 2 * n, 7);
        group.bench_function(format!("kappa_random_n{n}"), |b| {
            b.iter(|| connectivity::vertex_connectivity(black_box(&g)))
        });
    }
    let g = builders::hypercube(5);
    group.bench_function("kappa_hypercube_q5", |b| {
        b.iter(|| connectivity::vertex_connectivity(black_box(&g)))
    });
    group.bench_function("disjoint_paths_q5", |b| {
        b.iter(|| connectivity::vertex_disjoint_paths(black_box(&g), NodeId(0), NodeId(31)))
    });
    group.finish();
}

fn bench_covers(h: &mut Harness) {
    let mut group = h.benchmark_group("substrate_covers");
    group.bench_function("double_cover_k12", |b| {
        let g = builders::complete(12);
        let a: BTreeSet<NodeId> = (0..4).map(NodeId).collect();
        let x: BTreeSet<NodeId> = (8..12).map(NodeId).collect();
        b.iter(|| Covering::double_cover_crossing(black_box(&g), &a, &x).unwrap())
    });
    for m in [8usize, 64, 256] {
        group.bench_function(format!("cyclic_cover_3x{m}"), |b| {
            b.iter(|| Covering::cyclic_cover(3, black_box(m)).unwrap())
        });
    }
    group.finish();
}

fn bench_simulator(h: &mut Harness) {
    let mut group = h.benchmark_group("substrate_simulator");
    for (name, g) in [
        ("k8", builders::complete(8)),
        ("ring48", builders::cycle(48)),
    ] {
        group.bench_function(format!("table_run_{name}_t20"), |b| {
            b.iter(|| {
                let mut sys = System::new(g.clone());
                for v in g.nodes() {
                    sys.assign(
                        v,
                        Box::new(TableDevice::new(u64::from(v.0), 50)),
                        Input::Bool(v.0 % 2 == 0),
                    );
                }
                sys.run(black_box(20))
            })
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    bench_connectivity(&mut h);
    bench_covers(&mut h);
    bench_simulator(&mut h);
}
