//! Machine-readable perf suites: the numbers behind `BENCH_substrate.json`
//! and `BENCH_refuters.json`.
//!
//! Each suite measures a small, stable set of hot paths and reports median
//! ns/op via [`crate::harness::measure`]. The substrate suite pits the dense
//! edge-indexed message plane against [`System::run_reference`] — the
//! original map-per-delivery loop kept in-tree as a differential baseline —
//! and the refuter suite pits the `flm-par` worker pool against the inline
//! sequential path, so regressions in either direction show up as a speedup
//! ratio drifting in the JSON snapshots.

use crate::harness::{measure, Config, Stats};
use crate::protocols_under_test::{EigUnderTest, TableUnderTest};
use flm_core::refute;
use flm_graph::builders;
use flm_sim::devices::TableDevice;
use flm_sim::{Input, Payload, System};

/// One measured bench: a stable name plus its timing statistics.
pub struct BenchRow {
    /// `group/variant` identifier, stable across runs.
    pub name: String,
    /// Per-iteration statistics in nanoseconds.
    pub stats: Stats,
}

/// A suite's rows plus the headline speedup ratios derived from them.
pub struct Suite {
    /// Every measured bench.
    pub rows: Vec<BenchRow>,
    /// `(label, ratio)` pairs; ratio > 1 means the optimized path wins.
    pub speedups: Vec<(String, f64)>,
}

fn cfg(samples: usize) -> Config {
    Config {
        samples,
        warmup_iters: 3,
    }
}

fn ratio(baseline: Stats, optimized: Stats) -> f64 {
    baseline.median_ns as f64 / optimized.median_ns.max(1) as f64
}

/// The message-plane suite: dense edge-indexed run vs the reference
/// map-per-delivery loop, plus payload clone fan-out.
pub fn substrate_suite(samples: usize) -> Suite {
    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    for (name, g) in [
        ("k8", builders::complete(8)),
        ("ring48", builders::cycle(48)),
    ] {
        let run_once = |reference: bool| {
            let mut sys = System::new(g.clone());
            for v in g.nodes() {
                sys.assign(
                    v,
                    Box::new(TableDevice::new(u64::from(v.0), 50)),
                    Input::Bool(v.0.is_multiple_of(2)),
                );
            }
            if reference {
                sys.run_reference(20).unwrap()
            } else {
                sys.try_run(20).unwrap()
            }
        };
        let dense = measure(config, || run_once(false));
        let reference = measure(config, || run_once(true));
        speedups.push((
            format!("table_run_{name}_t20: dense plane vs reference loop"),
            ratio(reference, dense),
        ));
        rows.push(BenchRow {
            name: format!("table_run_{name}_t20/dense"),
            stats: dense,
        });
        rows.push(BenchRow {
            name: format!("table_run_{name}_t20/reference"),
            stats: reference,
        });
    }

    // Broadcast fan-out: one 1 KiB message cloned to 64 ports. The Arc
    // payload bumps a refcount; the byte-vector baseline deep-copies.
    let bytes = vec![0xA5u8; 1024];
    let payload: Payload = bytes.clone().into();
    let arc = measure(config, || {
        (0..64).map(|_| Some(payload.clone())).collect::<Vec<_>>()
    });
    let vec = measure(config, || {
        (0..64).map(|_| Some(bytes.clone())).collect::<Vec<_>>()
    });
    speedups.push((
        "broadcast_fanout_1k_x64: arc payload vs byte copy".into(),
        ratio(vec, arc),
    ));
    rows.push(BenchRow {
        name: "broadcast_fanout_1k_x64/arc".into(),
        stats: arc,
    });
    rows.push(BenchRow {
        name: "broadcast_fanout_1k_x64/vec".into(),
        stats: vec,
    });

    Suite { rows, speedups }
}

/// The refuter suite: worker-pool vs inline-sequential execution of the
/// chain-transplant and validity-pin fan-outs.
pub fn refuter_suite(samples: usize) -> Suite {
    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    let k6 = builders::complete(6);
    let eig = EigUnderTest { f: 2 };
    let par = measure(config, || refute::ba_nodes(&eig, &k6, 2).unwrap());
    let seq = measure(config, || {
        flm_par::sequential(|| refute::ba_nodes(&eig, &k6, 2).unwrap())
    });
    speedups.push((
        "ba_nodes_k6_f2_eig: worker pool vs sequential".into(),
        ratio(seq, par),
    ));
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig/parallel".into(),
        stats: par,
    });
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig/sequential".into(),
        stats: seq,
    });

    let tri = builders::triangle();
    let table = TableUnderTest { seed: 11 };
    let par = measure(config, || refute::weak_agreement(&table, &tri, 1).unwrap());
    let seq = measure(config, || {
        flm_par::sequential(|| refute::weak_agreement(&table, &tri, 1).unwrap())
    });
    speedups.push((
        "weak_agreement_table: worker pool vs sequential".into(),
        ratio(seq, par),
    ));
    rows.push(BenchRow {
        name: "weak_agreement_table/parallel".into(),
        stats: par,
    });
    rows.push(BenchRow {
        name: "weak_agreement_table/sequential".into(),
        stats: seq,
    });

    // Certificate audit path: encode to the portable FLMC bytes, decode
    // them back, and re-verify — the three legs `flm-audit` runs per file.
    let eig1 = EigUnderTest { f: 1 };
    let cert = refute::ba_nodes(&eig1, &tri, 1).unwrap();
    let bytes = cert.to_bytes();
    let encode = measure(config, || cert.to_bytes());
    let decode = measure(config, || {
        flm_core::Certificate::from_bytes(&bytes).unwrap()
    });
    let verify = measure(config, || cert.verify(&eig1).unwrap());
    speedups.push((
        "certificate_ba_triangle: verify vs decode".into(),
        ratio(verify, decode),
    ));
    rows.push(BenchRow {
        name: "certificate_ba_triangle/encode".into(),
        stats: encode,
    });
    rows.push(BenchRow {
        name: "certificate_ba_triangle/decode".into(),
        stats: decode,
    });
    rows.push(BenchRow {
        name: "certificate_ba_triangle/verify".into(),
        stats: verify,
    });

    Suite { rows, speedups }
}

/// Renders a suite as a small, stable JSON document (median ns/op).
pub fn to_json(suite_name: &str, suite: &Suite) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"suite\": \"{suite_name}\",\n"));
    s.push_str("  \"unit\": \"ns/op\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, row) in suite.rows.iter().enumerate() {
        let comma = if i + 1 == suite.rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}}}{comma}\n",
            row.name, row.stats.median_ns, row.stats.min_ns, row.stats.mean_ns
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedups\": [\n");
    for (i, (label, ratio)) in suite.speedups.iter().enumerate() {
        let comma = if i + 1 == suite.speedups.len() {
            ""
        } else {
            ","
        };
        s.push_str(&format!(
            "    {{\"label\": \"{label}\", \"ratio\": {ratio:.2}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_names_are_stable() {
        let suite = Suite {
            rows: vec![BenchRow {
                name: "a/b".into(),
                stats: Stats {
                    min_ns: 1,
                    median_ns: 2,
                    mean_ns: 3,
                },
            }],
            speedups: vec![("a vs b".into(), 2.5)],
        };
        let json = to_json("substrate", &suite);
        assert!(json.contains("\"suite\": \"substrate\""));
        assert!(json.contains("\"median_ns\": 2"));
        assert!(json.contains("\"ratio\": 2.50"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn substrate_suite_measures_dense_against_reference() {
        let suite = substrate_suite(3);
        assert!(suite.rows.iter().any(|r| r.name.ends_with("/dense")));
        assert!(suite.rows.iter().any(|r| r.name.ends_with("/reference")));
        assert_eq!(suite.speedups.len(), 3);
        assert!(suite.speedups.iter().all(|(_, r)| *r > 0.0));
    }
}
