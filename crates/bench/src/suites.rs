//! Machine-readable perf suites: the numbers behind `BENCH_substrate.json`,
//! `BENCH_refuters.json`, `BENCH_runcache.json`, `BENCH_serve.json`,
//! `BENCH_campaign.json`, and `BENCH_prefix.json`.
//!
//! Each suite measures a small, stable set of hot paths and reports
//! min/median/mean ns/op via [`crate::harness::measure`]. The substrate suite pits the dense
//! edge-indexed message plane against [`System::run_reference`] — the
//! original map-per-delivery loop kept in-tree as a differential baseline.
//! The refuter suite pits the full run-reuse engine (adaptive dispatch,
//! warm run cache) against the cold sequential baseline, and the runcache
//! suite isolates each engine layer — memoization, scratch arena, adaptive
//! dispatch — and the serve suite round-trips FLMC-RPC requests against an
//! in-process `flm-serve` server — so regressions in any direction show up
//! as a speedup ratio drifting in the JSON snapshots
//! (`scripts/check.sh --bench-gate` fails on a >25% drop against the
//! committed numbers).

use crate::harness::{measure, Config, Stats};
use crate::protocols_under_test::{EigUnderTest, TableUnderTest};
use flm_core::refute;
use flm_graph::builders;
use flm_sim::devices::TableDevice;
use flm_sim::{Input, Payload, System};

/// One measured bench: a stable name plus its timing statistics.
pub struct BenchRow {
    /// `group/variant` identifier, stable across runs.
    pub name: String,
    /// Per-iteration statistics in nanoseconds.
    pub stats: Stats,
}

/// A suite's rows plus the headline speedup ratios derived from them.
pub struct Suite {
    /// Every measured bench.
    pub rows: Vec<BenchRow>,
    /// `(label, ratio)` pairs; ratio > 1 means the optimized path wins.
    pub speedups: Vec<(String, f64)>,
}

fn cfg(samples: usize) -> Config {
    Config {
        samples,
        warmup_iters: 3,
    }
}

// Headline ratios compare minimum times, not medians: the minimum is the
// classic noise-floor estimator, and on a single-core bench host it is the
// only statistic stable enough for `check.sh --bench-gate` to compare
// across runs without flaking on scheduler jitter.
fn ratio(baseline: Stats, optimized: Stats) -> f64 {
    baseline.min_ns as f64 / optimized.min_ns.max(1) as f64
}

/// The message-plane suite: dense edge-indexed run vs the reference
/// map-per-delivery loop, plus payload clone fan-out.
pub fn substrate_suite(samples: usize) -> Suite {
    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    for (name, g) in [
        ("k8", builders::complete(8)),
        ("ring48", builders::cycle(48)),
    ] {
        let run_once = |reference: bool| {
            let mut sys = System::new(g.clone());
            for v in g.nodes() {
                sys.assign(
                    v,
                    Box::new(TableDevice::new(u64::from(v.0), 50)),
                    Input::Bool(v.0.is_multiple_of(2)),
                );
            }
            if reference {
                sys.run_reference(20).unwrap()
            } else {
                sys.try_run(20).unwrap()
            }
        };
        let dense = measure(config, || run_once(false));
        let reference = measure(config, || run_once(true));
        speedups.push((
            format!("table_run_{name}_t20: dense plane vs reference loop"),
            ratio(reference, dense),
        ));
        rows.push(BenchRow {
            name: format!("table_run_{name}_t20/dense"),
            stats: dense,
        });
        rows.push(BenchRow {
            name: format!("table_run_{name}_t20/reference"),
            stats: reference,
        });
    }

    // Broadcast fan-out: one 1 KiB message cloned to 64 ports. The Arc
    // payload bumps a refcount; the byte-vector baseline deep-copies.
    let bytes = vec![0xA5u8; 1024];
    let payload: Payload = bytes.clone().into();
    let arc = measure(config, || {
        (0..64).map(|_| Some(payload.clone())).collect::<Vec<_>>()
    });
    let vec = measure(config, || {
        (0..64).map(|_| Some(bytes.clone())).collect::<Vec<_>>()
    });
    speedups.push((
        "broadcast_fanout_1k_x64: arc payload vs byte copy".into(),
        ratio(vec, arc),
    ));
    rows.push(BenchRow {
        name: "broadcast_fanout_1k_x64/arc".into(),
        stats: arc,
    });
    rows.push(BenchRow {
        name: "broadcast_fanout_1k_x64/vec".into(),
        stats: vec,
    });

    Suite { rows, speedups }
}

/// The refuter suite: the full run-reuse engine (adaptive dispatch plus a
/// warm run cache — the steady state of a refute-then-verify pipeline)
/// against the cold baseline (inline-sequential execution with the cache
/// bypassed, re-simulating every run).
pub fn refuter_suite(samples: usize) -> Suite {
    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    let k6 = builders::complete(6);
    let eig = EigUnderTest { f: 2 };
    let par = measure(config, || refute::ba_nodes(&eig, &k6, 2).unwrap());
    let seq = measure(config, || {
        flm_par::sequential(|| {
            flm_sim::runcache::bypass(|| refute::ba_nodes(&eig, &k6, 2).unwrap())
        })
    });
    speedups.push((
        "ba_nodes_k6_f2_eig: engine (adaptive, warm cache) vs cold sequential".into(),
        ratio(seq, par),
    ));
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig/parallel".into(),
        stats: par,
    });
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig/sequential".into(),
        stats: seq,
    });

    let tri = builders::triangle();
    let table = TableUnderTest { seed: 11 };
    let par = measure(config, || refute::weak_agreement(&table, &tri, 1).unwrap());
    let seq = measure(config, || {
        flm_par::sequential(|| {
            flm_sim::runcache::bypass(|| refute::weak_agreement(&table, &tri, 1).unwrap())
        })
    });
    speedups.push((
        "weak_agreement_table: engine (adaptive, warm cache) vs cold sequential".into(),
        ratio(seq, par),
    ));
    rows.push(BenchRow {
        name: "weak_agreement_table/parallel".into(),
        stats: par,
    });
    rows.push(BenchRow {
        name: "weak_agreement_table/sequential".into(),
        stats: seq,
    });

    // The asynchronous family: the scheduling-adversary search (fair probe,
    // then per-victim starvation with bivalence look-ahead) over the
    // WaitForAll prey. Warm serves the probe runs from the async run-cache
    // domain; cold bypasses the cache and re-runs every schedule.
    let k4 = builders::complete(4);
    let prey = flm_protocols::resolve("WaitForAll").unwrap();
    let warm = measure(config, || refute::flp_async(&*prey, &k4).unwrap());
    let cold = measure(config, || {
        flm_par::sequential(|| {
            flm_sim::runcache::bypass(|| refute::flp_async(&*prey, &k4).unwrap())
        })
    });
    speedups.push((
        "flp_async_k4_waitforall: engine (warm async cache) vs cold sequential".into(),
        ratio(cold, warm),
    ));
    rows.push(BenchRow {
        name: "flp_async_k4_waitforall/warm".into(),
        stats: warm,
    });
    rows.push(BenchRow {
        name: "flp_async_k4_waitforall/cold".into(),
        stats: cold,
    });

    // Certificate audit path: encode to the portable FLMC bytes, decode
    // them back, and re-verify — the three legs `flm-audit` runs per file.
    let eig1 = EigUnderTest { f: 1 };
    let cert = refute::ba_nodes(&eig1, &tri, 1).unwrap();
    let bytes = cert.to_bytes();
    let encode = measure(config, || cert.to_bytes());
    let decode = measure(config, || {
        flm_core::Certificate::from_bytes(&bytes).unwrap()
    });
    let verify = measure(config, || cert.verify(&eig1).unwrap());
    // Encode/decode/verify are recorded as latency rows only. An earlier
    // revision published "verify vs decode" as a speedup ratio, but the two
    // legs are different operations, not an optimized/baseline pair — the
    // ratio (≈0.6) read as a regression when nothing had regressed.
    rows.push(BenchRow {
        name: "certificate_ba_triangle/encode".into(),
        stats: encode,
    });
    rows.push(BenchRow {
        name: "certificate_ba_triangle/decode".into(),
        stats: decode,
    });
    rows.push(BenchRow {
        name: "certificate_ba_triangle/verify".into(),
        stats: verify,
    });

    Suite { rows, speedups }
}

/// The run-reuse suite: each row isolates one layer of the engine —
/// memoization (warm vs cold cache on a refutation sweep), the scratch
/// arena (reused vs fresh buffers over a system sweep), and adaptive
/// dispatch (cost-aware vs naive pool fan-out on sub-dispatch work).
pub fn runcache_suite(samples: usize) -> Suite {
    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    // Memoization: the same ba_nodes refutation, warm (covering run and all
    // chain transplants served from the cache) vs cold (cache cleared before
    // every iteration, so each run re-simulates).
    let k6 = builders::complete(6);
    let eig = EigUnderTest { f: 2 };
    let warm = measure(config, || refute::ba_nodes(&eig, &k6, 2).unwrap());
    let cold = measure(config, || {
        flm_sim::runcache::clear();
        flm_sim::prefixcache::clear();
        refute::ba_nodes(&eig, &k6, 2).unwrap()
    });
    speedups.push((
        "ba_nodes_k6_f2_eig_refute: warm run cache vs cold".into(),
        ratio(cold, warm),
    ));
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig_refute/warm".into(),
        stats: warm,
    });
    rows.push(BenchRow {
        name: "ba_nodes_k6_f2_eig_refute/cold".into(),
        stats: cold,
    });

    // Scratch arena: a sweep of short-horizon K16 table systems, reusing
    // one scratch vs allocating fresh edge tables and inboxes per run.
    // The short horizon keeps per-run setup (what the scratch elides)
    // a measurable share of the total, unlike long refuter runs where
    // stepping dominates.
    let g = builders::complete(16);
    let build = |seed: u64| {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(
                v,
                Box::new(TableDevice::new(seed ^ u64::from(v.0), 50)),
                Input::Bool(v.0.is_multiple_of(2)),
            );
        }
        sys
    };
    let scratch = measure(config, || {
        let mut scratch = flm_sim::RunScratch::new();
        for seed in 0..32 {
            std::hint::black_box(build(seed).try_run_with_scratch(2, &mut scratch).unwrap());
        }
    });
    let fresh = measure(config, || {
        for seed in 0..32 {
            std::hint::black_box(build(seed).try_run(2).unwrap());
        }
    });
    speedups.push((
        "table_sweep_k16_t2_x32: reused scratch arena vs fresh buffers".into(),
        ratio(fresh, scratch),
    ));
    rows.push(BenchRow {
        name: "table_sweep_k16_t2_x32/scratch".into(),
        stats: scratch,
    });
    rows.push(BenchRow {
        name: "table_sweep_k16_t2_x32/fresh".into(),
        stats: fresh,
    });

    // Adaptive dispatch: 64 sub-microsecond items. The naive mapper pays a
    // pool dispatch; the adaptive mapper sees the cost hint and inlines.
    let items: Vec<u64> = (0..64).collect();
    let work = |x: u64| {
        let mut acc = x;
        for i in 0..50u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    };
    let adaptive = measure(config, || {
        flm_par::par_map_adaptive(items.clone(), 100, work)
    });
    let naive = measure(config, || flm_par::par_map(items.clone(), work));
    speedups.push((
        "par_map_tiny_x64: adaptive dispatch vs naive pool fan-out".into(),
        ratio(naive, adaptive),
    ));
    rows.push(BenchRow {
        name: "par_map_tiny_x64/adaptive".into(),
        stats: adaptive,
    });
    rows.push(BenchRow {
        name: "par_map_tiny_x64/naive".into(),
        stats: naive,
    });

    Suite { rows, speedups }
}

/// The service suite: FLMC-RPC round trips against an in-process
/// `flm-serve` server on a loopback socket — raw frame/socket overhead
/// (ping), refutation requests warm vs cold (the cross-connection
/// cache-sharing payoff), disk-warm requests off the persistent
/// certificate store (the cross-restart payoff), mixed-load throughput via
/// the load generator, and a 1000-connection simultaneous ping wave (the
/// gated headline is connections answered, not a timing: a dropped socket
/// fails the in-row assertion and a shed wave drags the ratio under the
/// gate's floor).
pub fn serve_suite(samples: usize) -> Suite {
    use flm_serve::client::Client;
    use flm_serve::loadgen::{self, Mix};
    use flm_serve::query::Theorem;
    use flm_serve::router::{Router, RouterConfig};
    use flm_serve::rpc::RefuteParams;
    use flm_serve::server::{ServeConfig, Server, ShardRole};
    use flm_serve::shard::{self, ShardMap};

    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    let server = Server::start(ServeConfig::default()).expect("bind loopback bench server");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect to bench server");

    // Ping: the floor — one frame each way, no work behind it.
    let ping = measure(config, || client.ping(b"bench", 0).unwrap());
    rows.push(BenchRow {
        name: "serve_ping/round_trip".into(),
        stats: ping,
    });

    // The runcache suite's k6/f2 workload, now over RPC. Warm requests are
    // answered from the process-global run cache the server's workers
    // share; cold clears that cache before every request, so each one pays
    // the full refutation. The gap is the service's warm-hit payoff.
    let k6 = builders::complete(6);
    let refute_rpc = |client: &mut Client| {
        client
            .refute("ba-nodes", Some("EIG(f=2)"), Some(&k6), 2, None)
            .unwrap()
    };
    let warm = measure(config, || refute_rpc(&mut client));
    let cold = measure(config, || {
        flm_sim::runcache::clear();
        flm_sim::prefixcache::clear();
        refute_rpc(&mut client)
    });
    speedups.push((
        "refute_rpc_ba_nodes_k6_f2: warm run cache vs cold, over RPC".into(),
        ratio(cold, warm),
    ));
    rows.push(BenchRow {
        name: "refute_rpc_ba_nodes_k6_f2/warm".into(),
        stats: warm,
    });
    rows.push(BenchRow {
        name: "refute_rpc_ba_nodes_k6_f2/cold".into(),
        stats: cold,
    });

    // Disk warm: the same workload answered from the persistent
    // certificate store with every in-memory layer — run cache, prefix
    // cache, the store's own memory tier — dropped before each request, so
    // the request pays key hashing + one file read + decode-verify instead
    // of a full simulation. Gated against the cold leg above: if the store
    // path regresses toward re-simulating, the ratio collapses.
    let store_root = std::env::temp_dir().join(format!(
        "flm-bench-store-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&store_root);
    let stored_server = Server::start(ServeConfig {
        store_dir: Some(store_root.clone()),
        ..ServeConfig::default()
    })
    .expect("bind store-backed bench server");
    let mut stored_client =
        Client::connect(stored_server.local_addr()).expect("connect to store-backed server");
    refute_rpc(&mut stored_client); // populate the disk entry

    // The disk-warm denominator is a ~40µs file read: min-of-N converges
    // slowly enough that the gate's 9-sample runs sat 25–30% above the
    // 25-sample committed floor. A sample floor keeps the estimator
    // comparable across sample counts (each iteration is cheap).
    let disk_cfg = cfg(samples.max(25));
    let disk_warm = measure(disk_cfg, || {
        flm_sim::runcache::clear();
        flm_sim::prefixcache::clear();
        stored_server.drop_store_memory();
        refute_rpc(&mut stored_client)
    });
    assert_eq!(
        stored_server.stats().store_misses,
        1,
        "disk-warm leg re-simulated instead of reading the store"
    );
    speedups.push((
        "refute_rpc_ba_nodes_k6_f2: disk-warm certificate store vs cold simulate, over RPC".into(),
        ratio(cold, disk_warm),
    ));
    rows.push(BenchRow {
        name: "refute_rpc_ba_nodes_k6_f2/disk_warm".into(),
        stats: disk_warm,
    });
    stored_server.shutdown();
    let _ = std::fs::remove_dir_all(&store_root);

    // Mixed load: 4 connections × 8 requests, equal refute/verify/audit
    // mix — the flm-client load generator end to end. The row's unit is
    // ns per whole batch (32 requests), not per request.
    let load = measure(config, || {
        let report = loadgen::run(&addr.to_string(), 4, 8, Mix::default(), Theorem::BaNodes)
            .expect("load generation");
        assert_eq!(
            report.transport_errors + report.abandoned,
            0,
            "load run dropped requests: {report}"
        );
        report
    });
    rows.push(BenchRow {
        name: "serve_load_mixed_c4_r8/batch".into(),
        stats: load,
    });

    // Connection-scale wave: 1000 sockets opened simultaneously, one ping
    // each, all held open until the last pong. The event loop must answer
    // every one — a dropped socket is a transport error and fails the
    // assertion outright. Typed `Overloaded` shedding is permitted by the
    // service contract, so the gated number is connections *answered*
    // (ok + overloaded): a constant 1000.0 for a healthy server, and any
    // wave that starts dropping below the gate's 0.75× floor fails it.
    let mut answered = 0u64;
    let wave = measure(config, || {
        let report = loadgen::ping_wave(&addr.to_string(), 1000);
        assert_eq!(report.transport_errors, 0, "wave dropped sockets: {report}");
        answered = report.ok + report.overloaded;
        report
    });
    rows.push(BenchRow {
        name: "serve_wave_c1000/wave".into(),
        stats: wave,
    });
    speedups.push((
        "serve_wave_c1000: simultaneous connections answered (ok + typed shed)".into(),
        answered as f64,
    ));

    // Sharded plane: two shards behind an flm-router, all in-process.
    // Ports are reserved up front (bind :0, note the address, drop,
    // rebind) so the topology is known before any shard starts. The k6/f2
    // workload again, three ways:
    //   - routed_warm vs direct_warm: the same warm refute through one
    //     router hop vs straight to the owning shard. The gated ratio is
    //     direct/routed, so 0.5 means the hop doubles the round trip —
    //     the acceptance line for the routing tax.
    //   - routed_cold vs routed_warm: the shard-local warm hit against a
    //     misrouted/cold request that pays the full simulation — the
    //     locality payoff that justifies owning key ranges at all.
    //   - a second 1000-socket ping wave, this time against the router
    //     front (the router answers pings locally, so this is the router
    //     reactor's own connection-scale headline).
    let holders: Vec<std::net::TcpListener> = (0..2)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve shard port"))
        .collect();
    let shard_addrs: Vec<String> = holders
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    drop(holders);
    let map = ShardMap::new(shard_addrs.clone()).expect("two-shard map");
    let shards: Vec<Server> = shard_addrs
        .iter()
        .enumerate()
        .map(|(id, addr)| {
            Server::start(ServeConfig {
                addr: addr.clone(),
                shard: Some(ShardRole {
                    id: id as u32,
                    map: map.clone(),
                }),
                ..ServeConfig::default()
            })
            .expect("bind bench shard")
        })
        .collect();
    let router =
        Router::start(RouterConfig::new("127.0.0.1:0", map.clone())).expect("bind bench router");
    let router_addr = router.local_addr();

    let owner = map.owner_of(
        &shard::routing_key(&RefuteParams {
            theorem: "ba-nodes".into(),
            protocol: Some("EIG(f=2)".into()),
            graph: Some(k6.clone()),
            f: 2,
            policy: None,
        })
        .expect("bench routing key"),
    );
    let mut routed = Client::connect(router_addr).expect("connect to bench router");
    let mut direct = Client::connect(map.addr(owner)).expect("connect to owning shard");
    assert_eq!(
        refute_rpc(&mut routed),
        refute_rpc(&mut direct),
        "routed and direct answers disagree byte-for-byte"
    );

    let routed_warm = measure(config, || refute_rpc(&mut routed));
    let direct_warm = measure(config, || refute_rpc(&mut direct));
    speedups.push((
        "refute_rpc_router_k6_f2: direct-to-owner warm vs one router hop (0.5 = hop costs 2x)"
            .into(),
        ratio(direct_warm, routed_warm),
    ));
    rows.push(BenchRow {
        name: "refute_rpc_router_k6_f2/routed_warm".into(),
        stats: routed_warm,
    });
    rows.push(BenchRow {
        name: "refute_rpc_router_k6_f2/direct_warm".into(),
        stats: direct_warm,
    });

    let routed_cold = measure(config, || {
        flm_sim::runcache::clear();
        flm_sim::prefixcache::clear();
        refute_rpc(&mut routed)
    });
    speedups.push((
        "refute_rpc_router_k6_f2: shard-local warm hit vs cold simulate through the router".into(),
        ratio(routed_cold, routed_warm),
    ));
    rows.push(BenchRow {
        name: "refute_rpc_router_k6_f2/routed_cold".into(),
        stats: routed_cold,
    });

    let mut routed_answered = 0u64;
    let router_wave = measure(config, || {
        let report = loadgen::ping_wave(&router_addr.to_string(), 1000);
        assert_eq!(
            report.transport_errors, 0,
            "router wave dropped sockets: {report}"
        );
        routed_answered = report.ok + report.overloaded;
        report
    });
    rows.push(BenchRow {
        name: "serve_wave_router_c1000/wave".into(),
        stats: router_wave,
    });
    speedups.push((
        "serve_wave_router_c1000: simultaneous connections answered through the router".into(),
        routed_answered as f64,
    ));

    drop(routed);
    drop(direct);
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }

    server.shutdown();
    Suite { rows, speedups }
}

/// The campaign suite: a trimmed fixed-seed chaos sweep (4 protocols × 2
/// topology families × 2 plan sizes = 16 runs, violations shrunk and
/// certified) measured cold — the run cache is cleared before every
/// iteration — with adaptive parallel dispatch and forced-sequential rows
/// for comparison. The runs are tiny, so the two timings sit near parity
/// by design (adaptive dispatch declines to spawn for sub-spawn-cost work);
/// they are recorded as rows, not gated ratios. The gated headline is not
/// a timing at all: the campaign's mean shrink ratio in nodes, which is
/// seed-deterministic, so the bench gate catches regressions in shrink
/// *quality* on any host. Derive sweep throughput as
/// `16 runs ÷ (min_ns / 1e9)` from the parallel row.
pub fn campaign_suite(samples: usize) -> Suite {
    use crate::campaign::{run_campaign, smoke_config};

    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    // Trim the smoke sweep to its fastest representative slice so the
    // suite stays cheap enough for debug-mode test runs.
    let mut sweep = smoke_config(0xF1A);
    sweep.protocols.retain(|(_, name)| {
        [
            "Table(7)",
            "NaiveMajority",
            "WeakViaBA(EIG(f=1))",
            "DLPSW(f=1, R=4)",
        ]
        .contains(&name.as_str())
    });
    sweep.graphs.truncate(2);
    let runs = sweep.protocols.len() * sweep.graphs.len() * sweep.rule_counts.len();

    let par = measure(config, || {
        flm_sim::runcache::clear();
        flm_sim::prefixcache::clear();
        run_campaign(&sweep)
    });
    let seq = measure(config, || {
        flm_par::sequential(|| {
            flm_sim::runcache::clear();
            flm_sim::prefixcache::clear();
            run_campaign(&sweep)
        })
    });
    rows.push(BenchRow {
        name: format!("campaign_sweep_{runs}runs/parallel"),
        stats: par,
    });
    rows.push(BenchRow {
        name: format!("campaign_sweep_{runs}runs/sequential"),
        stats: seq,
    });

    // Deterministic shrink quality: same seed, same ratio, every host.
    let outcome = run_campaign(&sweep);
    speedups.push((
        "campaign_shrink_quality: mean nodes before vs after shrinking (deterministic)".into(),
        outcome.report.mean_shrink_ratio(),
    ));

    Suite { rows, speedups }
}

/// The prefix-sharing suite: chain-link-shaped runs (a replay node
/// masquerading among table devices, the workload of every transplant in a
/// chain argument) served three ways — cold full simulation, a warm prefix
/// fork that re-simulates only the final ticks after a tail perturbation,
/// and a pure snapshot extraction when the whole run is already stored in
/// the trie. A dense-kernel-vs-reference-loop pair on the same link-shaped
/// system pins the structure-of-arrays substrate the forks resume into.
pub fn prefix_suite(samples: usize) -> Suite {
    use flm_graph::NodeId;
    use flm_sim::auth::mix64;
    use flm_sim::device::{snapshot, Device, NodeCtx};
    use flm_sim::prefixcache::{self, PrefixSchedule};
    use flm_sim::replay::ReplayDevice;
    use flm_sim::runcache::RunKey;
    use flm_sim::wire::Writer;
    use flm_sim::{EdgeBehavior, Payload, RunPolicy, Tick};
    use std::cell::Cell;

    /// A forkable device with a protocol-class per-tick cost. `TableDevice`
    /// steps in nanoseconds, which lets fixed per-run costs (building the
    /// system, encoding the schedule) drown the simulation being skipped;
    /// real consensus devices (EIG trees, signature chains) do orders of
    /// magnitude more work per tick. The mixing loop stands in for that.
    #[derive(Clone)]
    struct HeavyDevice {
        state: u64,
        rounds: u32,
        decided: Option<bool>,
    }

    impl Device for HeavyDevice {
        fn name(&self) -> &'static str {
            "BenchHeavy"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.state = mix64(self.state ^ u64::from(ctx.node.0));
        }
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            for (p, m) in inbox.iter().enumerate() {
                if let Some(m) = m {
                    for &b in m.iter() {
                        self.state = mix64(self.state ^ u64::from(b) ^ ((p as u64) << 32));
                    }
                }
            }
            for i in 0..u64::from(self.rounds) {
                self.state = mix64(self.state ^ i);
            }
            if t.0 == 60 {
                self.decided = Some(self.state & 1 == 1);
            }
            let out = self.state.to_be_bytes().to_vec();
            inbox
                .iter()
                .map(|_| Some(Payload::from(out.clone())))
                .collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            match self.decided {
                Some(b) => snapshot::decided_bool(b, &self.state.to_be_bytes()),
                None => snapshot::undecided(&self.state.to_be_bytes()),
            }
        }
        fn fork(&self) -> Option<Box<dyn Device>> {
            Some(Box::new(self.clone()))
        }
    }

    let config = cfg(samples);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    let g = builders::complete(6);
    let scripted = NodeId(0);
    let horizon: u32 = 64;
    let policy = RunPolicy::default();

    // Deterministic masquerade traces: one per port, payloads varying with
    // (port, tick), silences sprinkled in.
    let base: Vec<EdgeBehavior> = g
        .neighbors(scripted)
        .enumerate()
        .map(|(p, _)| {
            (0..horizon)
                .map(|t| {
                    if (t as usize + p).is_multiple_of(4) {
                        None
                    } else {
                        Some(Payload::from(vec![p as u8, t as u8, 0x5A]))
                    }
                })
                .collect()
        })
        .collect();

    let build = |traces: &[EdgeBehavior]| {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            if v == scripted {
                sys.assign(
                    v,
                    Box::new(ReplayDevice::masquerade(traces.to_vec())),
                    Input::Bool(false),
                );
            } else {
                sys.assign(
                    v,
                    Box::new(HeavyDevice {
                        state: 0xBE ^ u64::from(v.0),
                        rounds: 2_000,
                        decided: None,
                    }),
                    Input::Bool(v.0.is_multiple_of(2)),
                );
            }
        }
        sys
    };
    let schedule_for = |traces: &[EdgeBehavior]| {
        let mut w = Writer::new();
        w.str("bench-link").bytes(&g.to_bytes()).u32(scripted.0);
        for trace in traces {
            w.u32(trace.len() as u32);
        }
        let mut schedule = PrefixSchedule::new(w.finish(), vec![scripted]);
        for t in 0..horizon as usize {
            let mut tw = Writer::new();
            for trace in traces {
                match trace.get(t).and_then(Option::as_ref) {
                    None => {
                        tw.u8(0);
                    }
                    Some(p) => {
                        tw.u8(1).bytes(p);
                    }
                }
            }
            schedule.push_tick(tw.finish());
        }
        schedule
    };
    // The salt makes every iteration's key distinct, so the whole-run cache
    // never short-circuits the path under measurement.
    let run_prefixed = |traces: &[EdgeBehavior], salt: u64| {
        let mut w = Writer::new();
        w.str("bench-link").u64(salt);
        for trace in traces {
            flm_sim::behavior::encode_edge_behavior(trace, &mut w);
        }
        prefixcache::memoize_prefixed(
            &RunKey::new("bench-prefix", w.finish()),
            &schedule_for(traces),
            horizon,
            &policy,
            || Ok::<_, String>(build(traces)),
            |e| e.to_string(),
        )
        .unwrap()
    };
    let perturb = |salt: u64| {
        let mut traces = base.clone();
        for trace in &mut traces {
            *trace.last_mut().unwrap() =
                Some(Payload::from(vec![0xF0, salt as u8, (salt >> 8) as u8]));
        }
        traces
    };

    flm_sim::runcache::clear();
    prefixcache::clear();
    // Stock the trie once; every warm iteration below forks its boundaries.
    let _ = run_prefixed(&base, u64::MAX);

    // Warm fork: the tail of every trace changes each iteration, so the run
    // resumes from the deepest shared boundary and re-simulates only the
    // final stride of ticks.
    let salt = Cell::new(0u64);
    let warm_fork = measure(config, || {
        let s = salt.get();
        salt.set(s + 1);
        run_prefixed(&perturb(s), s)
    });

    // Extraction: the schedule matches the stored run tick for tick, so the
    // completion snapshot is forked and zero ticks are re-simulated (the
    // salted key still defeats the whole-run cache).
    let extract = measure(config, || {
        let s = salt.get();
        salt.set(s + 1);
        run_prefixed(&base, s)
    });

    // Cold: the identical per-iteration work — clone, perturb, build — but
    // every tick simulated from scratch with both reuse layers out of play.
    let cold = measure(config, || {
        let s = salt.get();
        salt.set(s + 1);
        flm_sim::runcache::bypass(|| build(&perturb(s)).run_contained(horizon, &policy).unwrap())
    });

    speedups.push((
        "link_tail_resim_k6_t64: warm prefix fork vs cold full run".into(),
        ratio(cold, warm_fork),
    ));
    // The extraction ratio (cold / extract, ~30-45×) is recorded via the
    // rows only: the extract leg finishes in tens of microseconds, so its
    // minimum swings far more than the gate's 25% tolerance between runs.
    rows.push(BenchRow {
        name: "link_run_k6_t64/warm_fork".into(),
        stats: warm_fork,
    });
    rows.push(BenchRow {
        name: "link_run_k6_t64/extract".into(),
        stats: extract,
    });
    rows.push(BenchRow {
        name: "link_run_k6_t64/cold".into(),
        stats: cold,
    });

    // The substrate the forks resume into: the SoA kernel vs the reference
    // loop on a link-shaped system (replay node included, unlike the
    // substrate suite's all-table rows). Light table devices here — with
    // heavy devices both loops just measure device stepping.
    let build_light = |traces: &[EdgeBehavior]| {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            if v == scripted {
                sys.assign(
                    v,
                    Box::new(ReplayDevice::masquerade(traces.to_vec())),
                    Input::Bool(false),
                );
            } else {
                sys.assign(
                    v,
                    Box::new(TableDevice::new(0xBE ^ u64::from(v.0), 64)),
                    Input::Bool(v.0.is_multiple_of(2)),
                );
            }
        }
        sys
    };
    let dense = measure(config, || build_light(&base).try_run(horizon).unwrap());
    let reference = measure(config, || {
        build_light(&base).run_reference(horizon).unwrap()
    });
    speedups.push((
        "link_table_run_k6_t64: dense kernel vs reference loop".into(),
        ratio(reference, dense),
    ));
    rows.push(BenchRow {
        name: "link_table_run_k6_t64/dense".into(),
        stats: dense,
    });
    rows.push(BenchRow {
        name: "link_table_run_k6_t64/reference".into(),
        stats: reference,
    });

    Suite { rows, speedups }
}

/// Renders a suite as a small, stable JSON document (median ns/op).
pub fn to_json(suite_name: &str, suite: &Suite) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"suite\": \"{suite_name}\",\n"));
    s.push_str("  \"unit\": \"ns/op\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, row) in suite.rows.iter().enumerate() {
        let comma = if i + 1 == suite.rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}}}{comma}\n",
            row.name, row.stats.median_ns, row.stats.min_ns, row.stats.mean_ns
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedups\": [\n");
    for (i, (label, ratio)) in suite.speedups.iter().enumerate() {
        let comma = if i + 1 == suite.speedups.len() {
            ""
        } else {
            ","
        };
        s.push_str(&format!(
            "    {{\"label\": \"{label}\", \"ratio\": {ratio:.2}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_names_are_stable() {
        let suite = Suite {
            rows: vec![BenchRow {
                name: "a/b".into(),
                stats: Stats {
                    min_ns: 1,
                    median_ns: 2,
                    mean_ns: 3,
                },
            }],
            speedups: vec![("a vs b".into(), 2.5)],
        };
        let json = to_json("substrate", &suite);
        assert!(json.contains("\"suite\": \"substrate\""));
        assert!(json.contains("\"median_ns\": 2"));
        assert!(json.contains("\"ratio\": 2.50"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn campaign_suite_rows_and_deterministic_shrink_quality() {
        let suite = campaign_suite(2);
        for name in [
            "campaign_sweep_16runs/parallel",
            "campaign_sweep_16runs/sequential",
        ] {
            assert!(suite.rows.iter().any(|r| r.name == name), "missing {name}");
        }
        assert_eq!(suite.speedups.len(), 1);
        // The shrink-quality headline is deterministic, not a timing: the
        // gate can hold it to a tight band across hosts.
        let (label, ratio) = &suite.speedups[0];
        assert!(label.contains("campaign_shrink_quality"));
        assert!(
            *ratio > 1.0,
            "trimmed sweep should shrink something: {ratio}"
        );
    }

    #[test]
    fn runcache_suite_has_the_three_engine_layers() {
        let suite = runcache_suite(2);
        for name in [
            "ba_nodes_k6_f2_eig_refute/warm",
            "ba_nodes_k6_f2_eig_refute/cold",
            "table_sweep_k16_t2_x32/scratch",
            "table_sweep_k16_t2_x32/fresh",
            "par_map_tiny_x64/adaptive",
            "par_map_tiny_x64/naive",
        ] {
            assert!(suite.rows.iter().any(|r| r.name == name), "missing {name}");
        }
        assert_eq!(suite.speedups.len(), 3);
        assert!(suite.speedups.iter().all(|(_, r)| *r > 0.0));
    }

    #[test]
    fn serve_suite_measures_rpc_warm_against_cold() {
        let suite = serve_suite(2);
        for name in [
            "serve_ping/round_trip",
            "refute_rpc_ba_nodes_k6_f2/warm",
            "refute_rpc_ba_nodes_k6_f2/cold",
            "refute_rpc_ba_nodes_k6_f2/disk_warm",
            "serve_load_mixed_c4_r8/batch",
            "serve_wave_c1000/wave",
            "refute_rpc_router_k6_f2/routed_warm",
            "refute_rpc_router_k6_f2/direct_warm",
            "refute_rpc_router_k6_f2/routed_cold",
            "serve_wave_router_c1000/wave",
        ] {
            assert!(suite.rows.iter().any(|r| r.name == name), "missing {name}");
        }
        assert_eq!(suite.speedups.len(), 6);
        assert!(suite.speedups.iter().all(|(_, r)| *r > 0.0));
        for prefix in ["serve_wave_c1000", "serve_wave_router_c1000"] {
            let wave = suite
                .speedups
                .iter()
                .find(|(label, _)| label.starts_with(prefix))
                .expect("wave headline");
            assert_eq!(wave.1, 1000.0, "a healthy plane answers every socket");
        }
    }

    #[test]
    fn substrate_suite_measures_dense_against_reference() {
        let suite = substrate_suite(3);
        assert!(suite.rows.iter().any(|r| r.name.ends_with("/dense")));
        assert!(suite.rows.iter().any(|r| r.name.ends_with("/reference")));
        assert_eq!(suite.speedups.len(), 3);
        assert!(suite.speedups.iter().all(|(_, r)| *r > 0.0));
    }
}
