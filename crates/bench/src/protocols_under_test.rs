//! The candidate protocols the experiments feed to refuters and sweeps.
//!
//! Refuters take `&dyn Protocol`; the concrete protocols in
//! `flm-protocols` carry their own fault budgets, so this module provides
//! thin adapters plus the graph-agnostic "naive" candidates used on graphs
//! where EIG cannot even be installed (non-complete ones).

use flm_graph::{Graph, NodeId};
use flm_protocols::Eig;
use flm_sim::devices::{NaiveMajorityDevice, TableDevice};
use flm_sim::{Device, Protocol};

/// EIG with an explicit fault budget, usable as a `&dyn Protocol`.
#[derive(Debug, Clone, Copy)]
pub struct EigUnderTest {
    /// The fault budget EIG is configured for.
    pub f: usize,
}

impl Protocol for EigUnderTest {
    fn name(&self) -> String {
        format!("EIG(f={})", self.f)
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        Eig::new(self.f).device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        Eig::new(self.f).horizon(g)
    }
}

/// One-round majority voting — runs on any graph, trivially wrong under
/// faults; the standard candidate for connectivity-bound experiments.
#[derive(Debug, Clone, Copy)]
pub struct NaiveUnderTest;

impl Protocol for NaiveUnderTest {
    fn name(&self) -> String {
        "NaiveMajority".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        3
    }
}

/// A seeded pseudo-random protocol (see [`TableDevice`]): the experiments
/// sweep seeds to approximate the theorems' universal quantifier.
#[derive(Debug, Clone, Copy)]
pub struct TableUnderTest {
    /// Seed selecting the protocol.
    pub seed: u64,
}

impl Protocol for TableUnderTest {
    fn name(&self) -> String {
        format!("Table({})", self.seed)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        Box::new(TableDevice::new(self.seed ^ u64::from(v.0), 3))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    #[test]
    fn adapters_construct_devices() {
        let g = builders::complete(4);
        let _ = EigUnderTest { f: 1 }.device(&g, NodeId(0));
        let _ = NaiveUnderTest.device(&g, NodeId(1));
        let _ = TableUnderTest { seed: 3 }.device(&g, NodeId(2));
    }

    /// The adapters' names must stay resolvable by the `flm-protocols`
    /// registry, or certificates naming them cannot be audited.
    #[test]
    fn adapter_names_resolve_in_the_registry() {
        let adapters: [&dyn Protocol; 3] = [
            &EigUnderTest { f: 2 },
            &NaiveUnderTest,
            &TableUnderTest { seed: 99 },
        ];
        for p in adapters {
            let resolved =
                flm_protocols::resolve(&p.name()).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert_eq!(resolved.name(), p.name());
            let g = builders::complete(4);
            assert_eq!(resolved.horizon(&g), p.horizon(&g));
        }
    }
}
