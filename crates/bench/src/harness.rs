//! A minimal, dependency-free micro-benchmark harness.
//!
//! Replaces Criterion so the workspace builds and benches offline, keeping
//! Criterion's calling convention (`benchmark_group` / `bench_function` /
//! `Bencher::iter`) so bench bodies read the same. Each bench is timed over
//! a fixed sample count after a warm-up; the report prints min/median/mean
//! per iteration. Pass a substring on the command line to run a subset.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples and warm-up used for each bench function.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Timed samples collected per bench.
    pub samples: usize,
    /// Warm-up iterations before sampling.
    pub warmup_iters: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 15,
            warmup_iters: 3,
        }
    }
}

/// One bench's collected per-iteration statistics, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: u128,
    /// Median sample — the number the JSON reports record.
    pub median_ns: u128,
    /// Mean over all samples.
    pub mean_ns: u128,
}

/// Times `f` under `config` and returns its per-iteration statistics —
/// the programmatic twin of [`Group::bench_function`], used by the
/// machine-readable suites behind `regen --bench`.
pub fn measure<R>(config: Config, mut f: impl FnMut() -> R) -> Stats {
    let mut b = Bencher {
        config,
        samples: Vec::with_capacity(config.samples),
    };
    b.iter(&mut f);
    b.stats().expect("config.samples must be positive")
}

/// Passed to each bench body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` for the configured warm-up and sample counts, recording
    /// per-iteration wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        for _ in 0..self.config.samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn stats(&mut self) -> Option<Stats> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(Stats {
            min_ns: self.samples[0].as_nanos(),
            median_ns: self.samples[self.samples.len() / 2].as_nanos(),
            mean_ns: (self.samples.iter().sum::<Duration>() / self.samples.len() as u32).as_nanos(),
        })
    }
}

/// A named group of benches, mirroring Criterion's `benchmark_group`.
pub struct Group<'a> {
    name: String,
    filter: Option<&'a str>,
    config: Config,
}

impl<'a> Group<'a> {
    /// Runs the bench body and reports its timings under `group/label`,
    /// unless a command-line filter excludes it.
    pub fn bench_function(&mut self, label: impl Into<String>, f: impl FnOnce(&mut Bencher)) {
        let label = label.into();
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = self.filter {
            if !full.contains(filter) {
                return;
            }
        }
        let mut b = Bencher {
            config: self.config,
            samples: Vec::with_capacity(self.config.samples),
        };
        f(&mut b);
        let Some(stats) = b.stats() else {
            println!("{full:<48} (no samples)");
            return;
        };
        let ns = |n: u128| Duration::from_nanos(n as u64);
        println!(
            "{full:<48} min {:>12?}  median {:>12?}  mean {:>12?}",
            ns(stats.min_ns),
            ns(stats.median_ns),
            ns(stats.mean_ns)
        );
    }

    /// Ends the group (parity with Criterion's API; nothing to flush).
    pub fn finish(self) {}
}

/// The harness entry: holds the command-line filter and default config.
pub struct Harness {
    filter: Option<String>,
    config: Config,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Builds a harness, reading an optional substring filter from argv.
    pub fn new() -> Self {
        // `cargo bench -- <filter>`; ignore flags Criterion users pass.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Harness {
            filter,
            config: Config::default(),
        }
    }

    /// Overrides the sample count (parity with Criterion's `sample_size`).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.samples = samples;
        self
    }

    /// Opens a named bench group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            name: name.into(),
            filter: self.filter.as_deref(),
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            config: Config {
                samples: 4,
                warmup_iters: 1,
            },
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 4);
        assert_eq!(count, 5); // 1 warm-up + 4 samples
    }
}
