//! A minimal, dependency-free micro-benchmark harness.
//!
//! Replaces Criterion so the workspace builds and benches offline, keeping
//! Criterion's calling convention (`benchmark_group` / `bench_function` /
//! `Bencher::iter`) so bench bodies read the same. Each bench is timed over
//! a fixed sample count after a warm-up; the report prints min/median/mean
//! per iteration. Pass a substring on the command line to run a subset.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples and warm-up used for each bench function.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Timed samples collected per bench.
    pub samples: usize,
    /// Warm-up iterations before sampling.
    pub warmup_iters: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 15,
            warmup_iters: 3,
        }
    }
}

/// Passed to each bench body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` for the configured warm-up and sample counts, recording
    /// per-iteration wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        for _ in 0..self.config.samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benches, mirroring Criterion's `benchmark_group`.
pub struct Group<'a> {
    name: String,
    filter: Option<&'a str>,
    config: Config,
}

impl<'a> Group<'a> {
    /// Runs the bench body and reports its timings under `group/label`,
    /// unless a command-line filter excludes it.
    pub fn bench_function(&mut self, label: impl Into<String>, f: impl FnOnce(&mut Bencher)) {
        let label = label.into();
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = self.filter {
            if !full.contains(filter) {
                return;
            }
        }
        let mut b = Bencher {
            config: self.config,
            samples: Vec::with_capacity(self.config.samples),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{full:<48} (no samples)");
            return;
        }
        b.samples.sort();
        let min = b.samples[0];
        let median = b.samples[b.samples.len() / 2];
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!("{full:<48} min {min:>12?}  median {median:>12?}  mean {mean:>12?}");
    }

    /// Ends the group (parity with Criterion's API; nothing to flush).
    pub fn finish(self) {}
}

/// The harness entry: holds the command-line filter and default config.
pub struct Harness {
    filter: Option<String>,
    config: Config,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Builds a harness, reading an optional substring filter from argv.
    pub fn new() -> Self {
        // `cargo bench -- <filter>`; ignore flags Criterion users pass.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Harness {
            filter,
            config: Config::default(),
        }
    }

    /// Overrides the sample count (parity with Criterion's `sample_size`).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.samples = samples;
        self
    }

    /// Opens a named bench group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            name: name.into(),
            filter: self.filter.as_deref(),
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            config: Config {
                samples: 4,
                warmup_iters: 1,
            },
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 4);
        assert_eq!(count, 5); // 1 warm-up + 4 samples
    }
}
