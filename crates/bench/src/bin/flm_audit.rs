//! `flm-audit` — standalone certificate checker.
//!
//! Loads an `FLMC` certificate file (written by `regen --emit-cert`),
//! resolves the recorded protocol through the `flm-protocols` registry, and
//! re-verifies the certificate from the bytes alone. The exit code is the
//! result:
//!
//! | exit | meaning |
//! |---|---|
//! | 0 | certificate decoded and the violation reproduced |
//! | 1 | certificate decoded but verification failed (not reproduced) |
//! | 2 | file unreadable, malformed bytes, or unresolvable protocol |
//!
//! ```text
//! flm-audit CERT.flmc [--timeline] [--quiet]
//! ```
//!
//! `--timeline` re-executes the violating behavior and prints its full
//! message timeline; `--quiet` suppresses everything but errors.

use std::process::ExitCode;

use flm_core::certificate::VerifyError;
use flm_core::codec::AnyCertificate;
use flm_protocols::{resolve, resolve_clock};

const EXIT_VERIFIED: u8 = 0;
const EXIT_NOT_REPRODUCED: u8 = 1;
const EXIT_MALFORMED: u8 = 2;

struct Args {
    path: String,
    timeline: bool,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut path = None;
    let mut timeline = false;
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--timeline" => timeline = true,
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err("exactly one certificate file expected".into());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("no certificate file given")?,
        timeline,
        quiet,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("flm-audit: {msg}");
            eprintln!("usage: flm-audit CERT [--timeline] [--quiet]");
            return ExitCode::from(EXIT_MALFORMED);
        }
    };
    ExitCode::from(audit(&args))
}

fn audit(args: &Args) -> u8 {
    let bytes = match std::fs::read(&args.path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("flm-audit: reading {}: {e}", args.path);
            return EXIT_MALFORMED;
        }
    };
    let cert = match flm_core::codec::decode_any(&bytes) {
        Ok(cert) => cert,
        Err(e) => {
            eprintln!("flm-audit: {}: {e}", args.path);
            return EXIT_MALFORMED;
        }
    };
    // Canonicality check before anything runs: accepted bytes must re-encode
    // to themselves, or the file's hash is not a fingerprint of its content.
    if cert.to_bytes() != bytes {
        eprintln!(
            "flm-audit: {}: decoded certificate does not re-encode to the input bytes",
            args.path
        );
        return EXIT_MALFORMED;
    }
    match cert {
        AnyCertificate::Discrete(cert) => {
            let protocol = match resolve(&cert.protocol) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("flm-audit: {e}");
                    return EXIT_MALFORMED;
                }
            };
            match cert.verify(&*protocol) {
                Ok(()) => {
                    if !args.quiet {
                        println!("{cert}");
                        println!("VERIFIED: violation reproduced against {}", cert.protocol);
                    }
                    if args.timeline {
                        match cert.replay_violating_behavior(&*protocol) {
                            Ok(behavior) => print!("{}", behavior.render_timeline()),
                            Err(e) => eprintln!("flm-audit: timeline replay failed: {e}"),
                        }
                    }
                    EXIT_VERIFIED
                }
                Err(VerifyError::NotReproduced { reason }) => {
                    eprintln!("flm-audit: NOT REPRODUCED: {reason}");
                    EXIT_NOT_REPRODUCED
                }
                Err(VerifyError::Malformed { reason }) => {
                    eprintln!("flm-audit: malformed certificate: {reason}");
                    EXIT_MALFORMED
                }
            }
        }
        AnyCertificate::Clock(cert) => {
            let protocol = match resolve_clock(&cert.protocol) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("flm-audit: {e}");
                    return EXIT_MALFORMED;
                }
            };
            match cert.verify(&*protocol) {
                Ok(()) => {
                    if !args.quiet {
                        println!("{cert}");
                        println!("VERIFIED: violation reproduced against {}", cert.protocol);
                    }
                    if args.timeline && !args.quiet {
                        eprintln!("flm-audit: --timeline applies to discrete certificates only");
                    }
                    EXIT_VERIFIED
                }
                Err(VerifyError::NotReproduced { reason }) => {
                    eprintln!("flm-audit: NOT REPRODUCED: {reason}");
                    EXIT_NOT_REPRODUCED
                }
                Err(VerifyError::Malformed { reason }) => {
                    eprintln!("flm-audit: malformed certificate: {reason}");
                    EXIT_MALFORMED
                }
            }
        }
    }
}
