//! Regenerates the tables recorded in EXPERIMENTS.md, and — with `--bench` —
//! the machine-readable perf snapshots `BENCH_substrate.json` and
//! `BENCH_refuters.json`.
//!
//! Run with:
//!
//! ```text
//! cargo run -p flm-bench --bin regen                    # markdown tables
//! cargo run -p flm-bench --bin regen -- --bench substrate [--samples N] [--out FILE]
//! cargo run -p flm-bench --bin regen -- --bench refuters  [--samples N] [--out FILE]
//! ```

use flm_bench::{experiments, suites};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(None) => print_tables(),
        Ok(Some(bench)) => run_bench(&bench),
        Err(msg) => {
            eprintln!("regen: {msg}");
            eprintln!("usage: regen [--bench substrate|refuters] [--samples N] [--out FILE]");
            std::process::exit(2);
        }
    }
}

struct BenchArgs {
    suite: String,
    samples: usize,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<Option<BenchArgs>, String> {
    let mut suite = None;
    let mut samples = 15usize;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next().cloned().ok_or(format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--bench" => {
                let s = value(&mut it)?;
                if s != "substrate" && s != "refuters" {
                    return Err(format!("unknown suite {s:?} (want substrate or refuters)"));
                }
                suite = Some(s);
            }
            "--samples" => {
                samples = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?;
                if samples == 0 {
                    return Err("--samples must be positive".into());
                }
            }
            "--out" => out = Some(value(&mut it)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    match suite {
        Some(suite) => Ok(Some(BenchArgs {
            suite,
            samples,
            out,
        })),
        None if samples != 15 || out.is_some() => {
            Err("--samples/--out only apply with --bench".into())
        }
        None => Ok(None),
    }
}

fn run_bench(args: &BenchArgs) {
    let suite = match args.suite.as_str() {
        "substrate" => suites::substrate_suite(args.samples),
        _ => suites::refuter_suite(args.samples),
    };
    let json = suites::to_json(&args.suite, &suite);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            for (label, ratio) in &suite.speedups {
                eprintln!("{label}: {ratio:.2}x");
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn print_tables() {
    println!("# FLM experiment tables (regenerated)\n");

    println!("## E9 — adequacy frontier\n");
    println!("| graph | n | κ | f | adequate | outcome |");
    println!("|---|---|---|---|---|---|");
    for r in experiments::frontier_rows(false) {
        let outcome = match r.outcome {
            experiments::FrontierOutcome::Refuted { bound } => {
                format!("refuted ({bound} bound), certificate verified")
            }
            experiments::FrontierOutcome::ProtocolWins => "protocol succeeds".into(),
        };
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            r.graph, r.n, r.kappa, r.f, r.adequate, outcome
        );
    }

    println!("\n## E11 — protocol costs (honest mixed-input runs)\n");
    println!("| protocol | graph | f | ticks | bytes on wire |");
    println!("|---|---|---|---|---|");
    for r in experiments::protocol_cost_rows() {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.protocol, r.graph, r.f, r.rounds, r.bytes
        );
    }

    println!("\n## E6/E11 — DLPSW convergence on K4, one random Byzantine node\n");
    println!("| rounds | measured spread | guaranteed bound Δ/2^R |");
    println!("|---|---|---|");
    for r in experiments::approx_convergence_rows(6, 3) {
        println!("| {} | {:.6} | {:.6} |", r.rounds, r.spread, r.bound);
    }

    println!("\n## E3/E6/E7 — refutation apparatus sizes\n");
    println!("| construction | parameter | cover nodes | chain length |");
    println!("|---|---|---|---|");
    let mut rows = vec![experiments::weak_ring_row()];
    rows.extend(experiments::general_ring_rows());
    rows.extend(experiments::eps_ring_rows());
    rows.extend(experiments::clock_ring_rows());
    for r in rows {
        println!(
            "| {} | {} | {} | {} |",
            r.construction, r.parameter, r.cover_nodes, r.chain
        );
    }
}
