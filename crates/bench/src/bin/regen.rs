//! Regenerates the tables recorded in EXPERIMENTS.md, and — with `--bench` —
//! the machine-readable perf snapshots `BENCH_substrate.json`,
//! `BENCH_refuters.json`, `BENCH_runcache.json`, `BENCH_serve.json`, and
//! `BENCH_prefix.json`.
//! With `--refute`, runs one refuter and writes the resulting certificate to
//! disk in the portable `FLMC` format, where `flm-audit` can re-verify it
//! independently.
//!
//! Run with:
//!
//! With `--campaign`, runs a seed-deterministic chaos campaign over the
//! protocol zoo × graph families × fault plans, shrinks every violation,
//! and writes the certificates plus `campaign_report.json` to a directory
//! (`flm-audit --batch DIR` checks the lot).
//!
//! ```text
//! cargo run -p flm-bench --bin regen                    # markdown tables
//! cargo run -p flm-bench --bin regen -- --bench substrate [--samples N] [--out FILE]
//! cargo run -p flm-bench --bin regen -- --bench refuters  [--samples N] [--out FILE]
//! cargo run -p flm-bench --bin regen -- --refute THEOREM --emit-cert FILE \
//!     [--protocol NAME] [--f N] [--graph GRAPH] \
//!     [--max-ticks N] [--max-payload-bytes N]
//! cargo run -p flm-bench --bin regen -- --campaign --out-dir DIR \
//!     [--seed N] [--scale smoke|full] \
//!     [--scheduler sync|async-fair|async-adversarial]...
//! ```
//!
//! `THEOREM` is one of `ba-nodes`, `ba-connectivity`, `weak-agreement`,
//! `firing-squad`, `simple-approx`, `eps-delta-gamma`, `clock-sync`,
//! `flp-async`;
//! `GRAPH` is `triangle`, `cycleN`, `completeN`, or `pathN`. The protocol
//! name is resolved through the `flm-protocols` registry, so anything the
//! registry accepts can be refuted; defaults are canonical per theorem.
//! The `--max-*` flags tighten the run policy recorded in the certificate.
//!
//! The theorem/graph grammar and the refutation code path live in
//! `flm_serve::query` — the same module the `flm-serve` RPC handler runs —
//! so a certificate written here is byte-identical to one served over the
//! wire for the same query.

use flm_bench::{campaign, experiments, suites};
use flm_core::codec::AnyCertificate;
use flm_serve::query::{self, Theorem};
use flm_sim::campaign::SchedulerKind;
use flm_sim::RunPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Mode::Tables) => print_tables(),
        Ok(Mode::Bench(bench)) => run_bench(&bench),
        Ok(Mode::Refute(refute)) => {
            if let Err(msg) = run_refute(&refute) {
                eprintln!("regen: {msg}");
                std::process::exit(1);
            }
        }
        Ok(Mode::Campaign(campaign)) => {
            if let Err(msg) = run_campaign_cli(&campaign) {
                eprintln!("regen: {msg}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("regen: {msg}");
            eprintln!(
                "usage: regen [--bench substrate|refuters|runcache|serve|campaign|prefix] [--samples N] [--out FILE]\n\
                 \x20      regen --refute THEOREM --emit-cert FILE [--protocol NAME] [--f N] \
                 [--graph GRAPH] [--max-ticks N] [--max-payload-bytes N]\n\
                 \x20      regen --campaign --out-dir DIR [--seed N] [--scale smoke|full] \
                 [--scheduler sync|async-fair|async-adversarial]..."
            );
            std::process::exit(2);
        }
    }
}

enum Mode {
    Tables,
    Bench(BenchArgs),
    Refute(RefuteArgs),
    Campaign(CampaignArgs),
}

struct CampaignArgs {
    out_dir: String,
    seed: u64,
    scale: String,
    schedulers: Vec<SchedulerKind>,
}

struct BenchArgs {
    suite: String,
    samples: usize,
    out: Option<String>,
}

struct RefuteArgs {
    theorem: String,
    emit_cert: String,
    protocol: Option<String>,
    f: usize,
    graph: Option<String>,
    max_ticks: Option<u32>,
    max_payload_bytes: Option<usize>,
}

fn parse(args: &[String]) -> Result<Mode, String> {
    let mut suite = None;
    let mut samples = 15usize;
    let mut out = None;
    let mut theorem = None;
    let mut emit_cert = None;
    let mut protocol = None;
    let mut f = 1usize;
    let mut graph = None;
    let mut max_ticks = None;
    let mut max_payload_bytes = None;
    let mut campaign_mode = false;
    let mut out_dir = None;
    let mut seed = 0xF1Au64;
    let mut seed_given = false;
    let mut scale = "full".to_string();
    let mut scale_given = false;
    let mut schedulers: Vec<SchedulerKind> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next().cloned().ok_or(format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--bench" => {
                let s = value(&mut it)?;
                if ![
                    "substrate",
                    "refuters",
                    "runcache",
                    "serve",
                    "campaign",
                    "prefix",
                ]
                .contains(&s.as_str())
                {
                    return Err(format!(
                        "unknown suite {s:?} (want substrate, refuters, runcache, serve, \
                         campaign, or prefix)"
                    ));
                }
                suite = Some(s);
            }
            "--campaign" => campaign_mode = true,
            "--out-dir" => out_dir = Some(value(&mut it)?),
            "--seed" => {
                let raw = value(&mut it)?;
                // Accept both decimal and the 0x-prefixed hex the campaign
                // report prints, so a seed can be pasted back verbatim.
                seed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => raw.parse(),
                }
                .map_err(|e| format!("--seed {raw:?}: {e}"))?;
                seed_given = true;
            }
            "--scale" => {
                scale = value(&mut it)?;
                if scale != "smoke" && scale != "full" {
                    return Err(format!("unknown scale {scale:?} (want smoke or full)"));
                }
                scale_given = true;
            }
            "--scheduler" => {
                let kind = SchedulerKind::parse(&value(&mut it)?)?;
                if !schedulers.contains(&kind) {
                    schedulers.push(kind);
                }
            }
            "--samples" => {
                samples = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?;
                if samples == 0 {
                    return Err("--samples must be positive".into());
                }
            }
            "--out" => out = Some(value(&mut it)?),
            "--refute" => theorem = Some(value(&mut it)?),
            "--emit-cert" => emit_cert = Some(value(&mut it)?),
            "--protocol" => protocol = Some(value(&mut it)?),
            "--f" => {
                f = value(&mut it)?.parse().map_err(|e| format!("--f: {e}"))?;
                if f == 0 {
                    return Err("--f must be positive".into());
                }
            }
            "--graph" => graph = Some(value(&mut it)?),
            "--max-ticks" => {
                max_ticks = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| format!("--max-ticks: {e}"))?,
                );
            }
            "--max-payload-bytes" => {
                max_payload_bytes = Some(
                    value(&mut it)?
                        .parse()
                        .map_err(|e| format!("--max-payload-bytes: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if campaign_mode {
        if theorem.is_some() || suite.is_some() || out.is_some() || emit_cert.is_some() {
            return Err("--refute/--bench/--out/--emit-cert do not apply with --campaign".into());
        }
        let out_dir = out_dir.ok_or("--campaign needs --out-dir DIR")?;
        if schedulers.is_empty() {
            schedulers.push(SchedulerKind::Sync);
        }
        return Ok(Mode::Campaign(CampaignArgs {
            out_dir,
            seed,
            scale,
            schedulers,
        }));
    }
    if out_dir.is_some() || seed_given || scale_given || !schedulers.is_empty() {
        return Err("--out-dir/--seed/--scale/--scheduler only apply with --campaign".into());
    }
    if let Some(theorem) = theorem {
        if suite.is_some() || out.is_some() {
            return Err("--bench/--out do not apply with --refute".into());
        }
        let emit_cert = emit_cert.ok_or("--refute needs --emit-cert FILE")?;
        return Ok(Mode::Refute(RefuteArgs {
            theorem,
            emit_cert,
            protocol,
            f,
            graph,
            max_ticks,
            max_payload_bytes,
        }));
    }
    if emit_cert.is_some() || protocol.is_some() || graph.is_some() {
        return Err("--emit-cert/--protocol/--graph only apply with --refute".into());
    }
    match suite {
        Some(suite) => Ok(Mode::Bench(BenchArgs {
            suite,
            samples,
            out,
        })),
        None if samples != 15 || out.is_some() => {
            Err("--samples/--out only apply with --bench".into())
        }
        None => Ok(Mode::Tables),
    }
}

fn run_refute(args: &RefuteArgs) -> Result<(), String> {
    let mut policy = RunPolicy::default();
    if let Some(t) = args.max_ticks {
        policy.max_ticks = t;
    }
    if let Some(b) = args.max_payload_bytes {
        policy.max_payload_bytes = b;
    }
    let theorem = Theorem::parse(&args.theorem).map_err(|e| e.to_string())?;
    let graph = match &args.graph {
        Some(name) => Some(query::parse_graph(name).map_err(|e| e.to_string())?),
        None => None,
    };
    let bytes = query::refute_to_bytes(
        theorem,
        args.protocol.as_deref(),
        graph.as_ref(),
        args.f,
        policy,
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(&args.emit_cert, &bytes)
        .map_err(|e| format!("writing {}: {e}", args.emit_cert))?;
    match flm_core::codec::decode_any(&bytes).map_err(|e| e.to_string())? {
        AnyCertificate::Discrete(cert) => eprintln!(
            "wrote {} ({}, {} chain links)",
            args.emit_cert,
            cert.protocol,
            cert.chain.len()
        ),
        AnyCertificate::Clock(cert) => eprintln!("wrote {} ({})", args.emit_cert, cert.protocol),
        AnyCertificate::Async(cert) => eprintln!(
            "wrote {} ({}, {} scheduled deliveries, strategy {})",
            args.emit_cert,
            cert.protocol,
            cert.schedule.len(),
            cert.strategy
        ),
    }
    print_profile();
    Ok(())
}

/// With `FLM_PROFILE=1`, prints the per-phase timing and run-cache summary
/// accumulated over the refutation (and its verification) to stderr.
fn print_profile() {
    if flm_core::profile::enabled() {
        eprint!("{}", flm_core::profile::report());
    }
}

fn run_campaign_cli(args: &CampaignArgs) -> Result<(), String> {
    let config = match args.scale.as_str() {
        "smoke" => campaign::smoke_config(args.seed),
        _ => campaign::full_config(args.seed),
    };
    let config = campaign::with_schedulers(config, args.schedulers.clone());
    let outcome = campaign::run_campaign(&config);
    let report_path = campaign::write_campaign(&outcome, std::path::Path::new(&args.out_dir))
        .map_err(|e| format!("writing {}: {e}", args.out_dir))?;
    eprintln!(
        "campaign seed {:#x} ({} scale): {} runs, {} violations (mean shrink ratio {:.2}x in \
         nodes), {} incidents",
        outcome.report.seed,
        args.scale,
        outcome.report.runs,
        outcome.report.violations.len(),
        outcome.report.mean_shrink_ratio(),
        outcome.report.incidents.len(),
    );
    eprintln!(
        "wrote {} certificates and {}",
        outcome.certs.len(),
        report_path.display()
    );
    print_profile();
    Ok(())
}

fn run_bench(args: &BenchArgs) {
    let suite = match args.suite.as_str() {
        "substrate" => suites::substrate_suite(args.samples),
        "runcache" => suites::runcache_suite(args.samples),
        "serve" => suites::serve_suite(args.samples),
        "campaign" => suites::campaign_suite(args.samples),
        "prefix" => suites::prefix_suite(args.samples),
        _ => suites::refuter_suite(args.samples),
    };
    let json = suites::to_json(&args.suite, &suite);
    match &args.out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            for (label, ratio) in &suite.speedups {
                eprintln!("{label}: {ratio:.2}x");
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn print_tables() {
    println!("# FLM experiment tables (regenerated)\n");

    println!("## E9 — adequacy frontier\n");
    println!("| graph | n | κ | f | adequate | outcome |");
    println!("|---|---|---|---|---|---|");
    for r in experiments::frontier_rows(false) {
        let outcome = match r.outcome {
            experiments::FrontierOutcome::Refuted { bound } => {
                format!("refuted ({bound} bound), certificate verified")
            }
            experiments::FrontierOutcome::ProtocolWins => "protocol succeeds".into(),
        };
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            r.graph, r.n, r.kappa, r.f, r.adequate, outcome
        );
    }

    println!("\n## E11 — protocol costs (honest mixed-input runs)\n");
    println!("| protocol | graph | f | ticks | bytes on wire |");
    println!("|---|---|---|---|---|");
    for r in experiments::protocol_cost_rows() {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.protocol, r.graph, r.f, r.rounds, r.bytes
        );
    }

    println!("\n## E6/E11 — DLPSW convergence on K4, one random Byzantine node\n");
    println!("| rounds | measured spread | guaranteed bound Δ/2^R |");
    println!("|---|---|---|");
    for r in experiments::approx_convergence_rows(6, 3) {
        println!("| {} | {:.6} | {:.6} |", r.rounds, r.spread, r.bound);
    }

    println!("\n## E3/E6/E7 — refutation apparatus sizes\n");
    println!("| construction | parameter | cover nodes | chain length |");
    println!("|---|---|---|---|");
    let mut rows = vec![experiments::weak_ring_row()];
    rows.extend(experiments::general_ring_rows());
    rows.extend(experiments::eps_ring_rows());
    rows.extend(experiments::clock_ring_rows());
    for r in rows {
        println!(
            "| {} | {} | {} | {} |",
            r.construction, r.parameter, r.cover_nodes, r.chain
        );
    }
}
