//! Regenerates the tables recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run -p flm-bench --bin regen`

use flm_bench::experiments;

fn main() {
    println!("# FLM experiment tables (regenerated)\n");

    println!("## E9 — adequacy frontier\n");
    println!("| graph | n | κ | f | adequate | outcome |");
    println!("|---|---|---|---|---|---|");
    for r in experiments::frontier_rows(false) {
        let outcome = match r.outcome {
            experiments::FrontierOutcome::Refuted { bound } => {
                format!("refuted ({bound} bound), certificate verified")
            }
            experiments::FrontierOutcome::ProtocolWins => "protocol succeeds".into(),
        };
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            r.graph, r.n, r.kappa, r.f, r.adequate, outcome
        );
    }

    println!("\n## E11 — protocol costs (honest mixed-input runs)\n");
    println!("| protocol | graph | f | ticks | bytes on wire |");
    println!("|---|---|---|---|---|");
    for r in experiments::protocol_cost_rows() {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.protocol, r.graph, r.f, r.rounds, r.bytes
        );
    }

    println!("\n## E6/E11 — DLPSW convergence on K4, one random Byzantine node\n");
    println!("| rounds | measured spread | guaranteed bound Δ/2^R |");
    println!("|---|---|---|");
    for r in experiments::approx_convergence_rows(6, 3) {
        println!("| {} | {:.6} | {:.6} |", r.rounds, r.spread, r.bound);
    }

    println!("\n## E3/E6/E7 — refutation apparatus sizes\n");
    println!("| construction | parameter | cover nodes | chain length |");
    println!("|---|---|---|---|");
    let mut rows = vec![experiments::weak_ring_row()];
    rows.extend(experiments::general_ring_rows());
    rows.extend(experiments::eps_ring_rows());
    rows.extend(experiments::clock_ring_rows());
    for r in rows {
        println!(
            "| {} | {} | {} | {} |",
            r.construction, r.parameter, r.cover_nodes, r.chain
        );
    }
}
