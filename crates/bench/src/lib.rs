//! Experiment runners for the FLM reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems and
//! the covering constructions behind them, not wall-clock tables. The
//! measurable artifacts this crate regenerates are therefore:
//!
//! * **dichotomy tables** — for a sweep of graphs and fault budgets, which
//!   side of the `3f+1` / `2f+1` frontier they fall on, and whether the
//!   refuter (inadequate side) or the protocol sweep (adequate side) wins;
//! * **construction-size tables** — covering sizes, ring lengths `4k` and
//!   `k+2`, and chain lengths as functions of protocol decision time and
//!   the claim parameters (ε, δ, γ, α);
//! * **protocol-cost tables** — rounds and message bytes for EIG,
//!   phase-king, Dolev–Strong, DLPSW, and the relay overlay.
//!
//! The benches under `benches/` time the same runners on the in-tree
//! [`harness`]; the `regen` binary prints the tables EXPERIMENTS.md records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod harness;
pub mod protocols_under_test;
pub mod suites;
