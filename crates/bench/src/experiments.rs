//! The experiment runners behind every table in EXPERIMENTS.md.

use flm_core::problems::ClockSyncClaim;
use flm_core::refute::{self, RefuteError};
use flm_graph::{adequacy, builders, connectivity, Graph, NodeId};
use flm_protocols::clock_sync::TrivialClockSync;
use flm_protocols::{testkit, Dlpsw, DolevStrong, Eig, PhaseKing, Relayed, WeakViaBa};
use flm_sim::adversary::RandomAdversary;
use flm_sim::clock::TimeFn;
use flm_sim::{Decision, Device, Input, Protocol, SystemBehavior};

use crate::protocols_under_test::{EigUnderTest, NaiveUnderTest};

/// Outcome of one frontier cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontierOutcome {
    /// The graph is inadequate and the refuter produced a verified
    /// counterexample (the named theorem side).
    Refuted {
        /// `"nodes"` or `"connectivity"` — which bound fired.
        bound: &'static str,
    },
    /// The graph is adequate and the protocol passed the sweep.
    ProtocolWins,
}

/// One row of the adequacy-frontier table (experiment E9).
#[derive(Debug, Clone)]
pub struct FrontierRow {
    /// Graph description.
    pub graph: String,
    /// Node count.
    pub n: usize,
    /// Vertex connectivity.
    pub kappa: usize,
    /// Fault budget.
    pub f: usize,
    /// Whether the graph is adequate for `f`.
    pub adequate: bool,
    /// What happened.
    pub outcome: FrontierOutcome,
}

/// Runs the E9 frontier sweep. With `exhaustive`, the adequate side runs
/// the full zoo-adversary sweep; otherwise a light honest + random-fault
/// check (for benches).
///
/// # Panics
///
/// Panics if any cell lands on the wrong side of the dichotomy — that *is*
/// the experiment's assertion.
pub fn frontier_rows(exhaustive: bool) -> Vec<FrontierRow> {
    let mut cases: Vec<(String, Graph, usize)> = Vec::new();
    for f in 1..=2usize {
        for n in 3..=(3 * f + 2) {
            cases.push((format!("K{n}"), builders::complete(n), f));
        }
    }
    for n in [4usize, 6] {
        cases.push((format!("C{n}"), builders::cycle(n), 1));
    }
    cases.push(("W6".into(), builders::wheel(6), 1));
    cases.push(("K3,3".into(), builders::complete_bipartite(3, 3), 1));
    cases.push(("Q3".into(), builders::hypercube(3), 1));

    let mut rows = Vec::new();
    for (name, g, f) in cases {
        let n = g.node_count();
        let kappa = connectivity::vertex_connectivity(&g);
        let adequate = adequacy::is_adequate(&g, f);
        let complete = g.is_complete();
        let outcome = if adequate {
            // The protocol must genuinely solve BA here.
            let proto: Box<dyn Protocol> = if complete {
                Box::new(EigUnderTest { f })
            } else {
                Box::new(Relayed::new(Eig::new(f), f))
            };
            if exhaustive {
                testkit::assert_byzantine_agreement(proto.as_ref(), &g, f, 2);
            } else {
                let b = testkit::run_honest(proto.as_ref(), &g, &|v: NodeId| {
                    Input::Bool(v.0.is_multiple_of(2))
                });
                let first = b.node(NodeId(0)).decision();
                assert!(
                    g.nodes().all(|v| b.node(v).decision() == first) && first.is_some(),
                    "{name}: protocol failed honest run on an adequate graph"
                );
            }
            FrontierOutcome::ProtocolWins
        } else {
            // Refute: the best available candidate that runs on this graph.
            let proto: Box<dyn Protocol> = if complete {
                Box::new(EigUnderTest { f })
            } else {
                Box::new(NaiveUnderTest)
            };
            let cert = refute::byzantine(proto.as_ref(), &g, f)
                .unwrap_or_else(|e| panic!("{name} (f={f}) should be refutable: {e}"));
            cert.verify(proto.as_ref())
                .unwrap_or_else(|e| panic!("{name} certificate: {e}"));
            let bound = match cert.theorem {
                flm_core::certificate::Theorem::BaNodes => "nodes",
                _ => "connectivity",
            };
            FrontierOutcome::Refuted { bound }
        };
        rows.push(FrontierRow {
            graph: name,
            n,
            kappa,
            f,
            adequate,
            outcome,
        });
    }
    rows
}

/// Total payload bytes sent over all edges of a behavior.
pub fn total_message_bytes(b: &SystemBehavior) -> usize {
    b.edges()
        .values()
        .flat_map(|trace| trace.iter().flatten())
        .map(|m| m.len())
        .sum()
}

/// One row of the protocol-cost table (experiment E11).
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Protocol name.
    pub protocol: String,
    /// Graph description.
    pub graph: String,
    /// Fault budget.
    pub f: usize,
    /// Ticks to decision (the protocol's horizon).
    pub rounds: u32,
    /// Total bytes on the wire in an honest mixed-input run.
    pub bytes: usize,
}

/// Runs the E11 protocol-cost comparison.
pub fn protocol_cost_rows() -> Vec<CostRow> {
    let mut rows = Vec::new();
    let mut push = |proto: &dyn Protocol, graph_name: &str, g: &Graph, f: usize| {
        let b = testkit::run_honest(proto, g, &|v: NodeId| Input::Bool(v.0.is_multiple_of(2)));
        rows.push(CostRow {
            protocol: proto.name(),
            graph: graph_name.into(),
            f,
            rounds: proto.horizon(g),
            bytes: total_message_bytes(&b),
        });
    };
    push(&Eig::new(1), "K4", &builders::complete(4), 1);
    push(&Eig::new(2), "K7", &builders::complete(7), 2);
    push(&PhaseKing::new(1), "K5", &builders::complete(5), 1);
    push(&PhaseKing::new(2), "K9", &builders::complete(9), 2);
    push(&DolevStrong::new(1, 7), "K3", &builders::triangle(), 1);
    push(&DolevStrong::new(2, 7), "K5", &builders::complete(5), 2);
    push(&Dlpsw::new(1, 5), "K4", &builders::complete(4), 1);
    push(&WeakViaBa::new(1), "K4", &builders::complete(4), 1);
    // Relay overhead: same logical protocol, sparse graph.
    let mut links = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            if (u, v) != (0, 4) {
                links.push((u, v));
            }
        }
    }
    let sparse = builders::from_links(5, &links).expect("valid links");
    push(&Relayed::new(Eig::new(1), 1), "K5−e", &sparse, 1);
    push(&Eig::new(1), "K5", &builders::complete(5), 1);
    rows
}

/// One row of the DLPSW convergence table (supports E6/E11): spread of the
/// correct nodes' values after each round, under a random Byzantine node.
#[derive(Debug, Clone)]
pub struct ConvergenceRow {
    /// Rounds run.
    pub rounds: u32,
    /// Final spread of correct decisions.
    pub spread: f64,
    /// The guaranteed bound `Δ/2^rounds`.
    pub bound: f64,
}

/// Runs DLPSW on K4 with one random adversary for 1..=`max_rounds` rounds.
pub fn approx_convergence_rows(max_rounds: u32, seed: u64) -> Vec<ConvergenceRow> {
    let g = builders::complete(4);
    (1..=max_rounds)
        .map(|rounds| {
            let proto = Dlpsw::new(1, rounds);
            let adv: Box<dyn Device> = Box::new(RandomAdversary::new(seed));
            let b = testkit::run_with_faults(
                &proto,
                &g,
                &|v: NodeId| Input::Real(f64::from(v.0)),
                vec![(NodeId(3), adv)],
            );
            let ds: Vec<f64> = (0..3)
                .filter_map(|i| match b.node(NodeId(i)).decision() {
                    Some(Decision::Real(r)) => Some(r),
                    _ => None,
                })
                .collect();
            let spread = ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min);
            ConvergenceRow {
                rounds,
                spread,
                bound: 2.0 / f64::from(1u32 << rounds),
            }
        })
        .collect()
}

/// One row of the covering-size table: how large the refutation apparatus
/// is as a function of problem parameters.
#[derive(Debug, Clone)]
pub struct ConstructionRow {
    /// Which construction.
    pub construction: String,
    /// Driving parameter, rendered.
    pub parameter: String,
    /// Cover node count.
    pub cover_nodes: usize,
    /// Chain length (behaviors constructed).
    pub chain: usize,
}

/// Measures the (ε,δ,γ) ring size as γ/(δ−ε) grows (experiment E6).
pub fn eps_ring_rows() -> Vec<ConstructionRow> {
    let proto = crate::protocols_under_test::TableUnderTest { seed: 5 };
    [
        (0.5, 1.0, 0.5),
        (0.5, 1.0, 2.0),
        (0.25, 1.0, 4.0),
        (0.1, 0.2, 4.0),
    ]
    .into_iter()
    .map(|(eps, delta, gamma)| {
        let cert = refute::eps_delta_gamma(&proto, &builders::triangle(), 1, eps, delta, gamma)
            .expect("ε < δ is refutable");
        let ring = cert
            .covering
            .split('(')
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(0);
        ConstructionRow {
            construction: "(ε,δ,γ) ring".into(),
            parameter: format!("ε={eps} δ={delta} γ={gamma}"),
            cover_nodes: ring,
            chain: cert.chain.len(),
        }
    })
    .collect()
}

/// Measures the clock-sync ring size as α shrinks (experiments E7/E8).
pub fn clock_ring_rows() -> Vec<ConstructionRow> {
    let proto = TrivialClockSync {
        l: TimeFn::identity(),
    };
    [4.0, 2.0, 1.0, 0.5]
        .into_iter()
        .map(|alpha| {
            let claim = ClockSyncClaim {
                p: TimeFn::identity(),
                q: TimeFn::linear(2.0),
                l: TimeFn::identity(),
                u: TimeFn::affine(2.0, 6.0),
                alpha,
                t_prime: 1.0,
            };
            let cert = refute::clock_sync(&proto, &builders::triangle(), 1, &claim)
                .expect("α > 0 is refutable");
            ConstructionRow {
                construction: "clock ring".into(),
                parameter: format!("α={alpha}"),
                cover_nodes: cert.k + 2,
                chain: cert.scenario + 1,
            }
        })
        .collect()
}

/// Refutes a weak-agreement protocol and reports the ring size chosen from
/// its decision time (experiment E3).
pub fn weak_ring_row() -> ConstructionRow {
    let proto = WeakAsIs(WeakViaBa::new(1));
    let cert = refute::weak_agreement(&proto, &builders::triangle(), 1).expect("refutable");
    let ring = cert
        .covering
        .split('-')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    ConstructionRow {
        construction: "weak-agreement ring".into(),
        parameter: format!("t′ from {}", proto.name()),
        cover_nodes: ring,
        chain: cert.chain.len(),
    }
}

/// Ring sizes for the general-case weak/firing-squad refuters (both
/// bounds): the number of graph copies in the crossed cyclic cover.
pub fn general_ring_rows() -> Vec<ConstructionRow> {
    use flm_protocols::FiringSquadViaBa;
    let mut rows = Vec::new();
    // Weak agreement, node bound on K5 (f = 2).
    let weak5 = WeakAsIs(WeakViaBa::new(2));
    let cert = refute::weak_any(&weak5, &builders::complete(5), 2).expect("refutable");
    rows.push(ConstructionRow {
        construction: "weak general crossed cover (K5, f=2)".into(),
        parameter: format!("t′ from {}", weak5.name()),
        cover_nodes: cert
            .covering
            .split("copies")
            .next()
            .and_then(|s| s.split(": ").nth(1))
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|m| m * 5)
            .unwrap_or(0),
        chain: cert.chain.len(),
    });
    // Weak agreement, connectivity bound on C6 (f = 1).
    let naive = crate::protocols_under_test::NaiveUnderTest;
    let cert = refute::weak_any(&naive, &builders::cycle(6), 1).expect("refutable");
    rows.push(ConstructionRow {
        construction: "weak connectivity crossed cover (C6, f=1)".into(),
        parameter: "t′ from NaiveMajority".into(),
        cover_nodes: cert
            .covering
            .split("copies")
            .next()
            .and_then(|s| s.split(": ").nth(1))
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|m| m * 6)
            .unwrap_or(0),
        chain: cert.chain.len(),
    });
    // Firing squad, node bound on K5 (f = 2).
    struct FsAsIs(FiringSquadViaBa);
    impl Protocol for FsAsIs {
        fn name(&self) -> String {
            self.0.name()
        }
        fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
            self.0.device(g, v)
        }
        fn horizon(&self, g: &Graph) -> u32 {
            self.0.horizon(g)
        }
    }
    let fs = FsAsIs(FiringSquadViaBa::new(2));
    let cert = refute::firing_squad_any(&fs, &builders::complete(5), 2).expect("refutable");
    rows.push(ConstructionRow {
        construction: "firing-squad general crossed cover (K5, f=2)".into(),
        parameter: format!("t_fire from {}", fs.name()),
        cover_nodes: cert
            .covering
            .split("copies")
            .next()
            .and_then(|s| s.split(": ").nth(1))
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|m| m * 5)
            .unwrap_or(0),
        chain: cert.chain.len(),
    });
    rows
}

/// Adapter making `WeakViaBa` a `dyn`-usable protocol here.
struct WeakAsIs(WeakViaBa);

impl Protocol for WeakAsIs {
    fn name(&self) -> String {
        self.0.name()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        self.0.device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        self.0.horizon(g)
    }
}

/// Checks (for benches) that a refutation attempt on an adequate graph is
/// correctly declined — used to time classification alone.
pub fn classify_only(g: &Graph, f: usize) -> bool {
    matches!(
        refute::ba_nodes(&NaiveUnderTest, g, f),
        Err(RefuteError::GraphIsAdequate { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_rows_cover_both_sides() {
        let rows = frontier_rows(false);
        assert!(rows.iter().any(|r| r.adequate));
        assert!(rows.iter().any(|r| !r.adequate));
        for r in &rows {
            match (&r.outcome, r.adequate) {
                (FrontierOutcome::ProtocolWins, true) => {}
                (FrontierOutcome::Refuted { .. }, false) => {}
                other => panic!("mismatched row {r:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn protocol_costs_are_positive_and_eig_explodes_with_f() {
        let rows = protocol_cost_rows();
        let eig1 = rows.iter().find(|r| r.protocol == "EIG(f=1)").unwrap();
        let eig2 = rows.iter().find(|r| r.protocol == "EIG(f=2)").unwrap();
        assert!(eig2.bytes > 4 * eig1.bytes, "EIG message growth is steep");
        for r in &rows {
            assert!(r.bytes > 0, "{r:?}");
        }
    }

    #[test]
    fn convergence_halves_each_round() {
        let rows = approx_convergence_rows(5, 3);
        for r in &rows {
            assert!(r.spread <= r.bound + 1e-12, "{r:?}");
        }
    }

    #[test]
    fn ring_sizes_grow_with_tightness() {
        let rows = clock_ring_rows();
        assert!(rows
            .windows(2)
            .all(|w| w[0].cover_nodes <= w[1].cover_nodes));
        let eps_rows = eps_ring_rows();
        assert!(!eps_rows.is_empty());
        let weak = weak_ring_row();
        assert!(weak.cover_nodes >= 12);
    }
}
