//! The chaos-campaign driver: sweep, probe, shrink, emit.
//!
//! A campaign takes a [`CampaignConfig`] (see [`flm_sim::campaign`] for the
//! sweep grammar), probes every cell of the protocol × topology ×
//! fault-plan cross-product in parallel, and turns what it finds into two
//! artifacts:
//!
//! * **certificates** — every violation is shrunk by greedy delta-debugging
//!   ([`flm_core::shrink`]) and emitted as a portable `FLMC` file that
//!   passes `flm-audit` exit 0;
//! * **a report** — deterministic JSON recording the seed, the sweep, run
//!   and incident counts, and per-violation shrink ratios.
//!
//! Every probe runs under [`System::run_contained`], so a panicking device,
//! an oversized payload, or a blown tick budget becomes a structured
//! [`Incident`], never a crash. The whole campaign is a pure function of
//! its config: the same seed reproduces byte-identical certificates and
//! report, which is asserted by the integration tests and the
//! `check.sh --campaign-smoke` gate.
//!
//! # Anatomy of a probe
//!
//! 1. Build the topology from its seeded family; resolve the protocol.
//! 2. Run the system with the spec's fault plan wrapped around the faulty
//!    senders (the *faulted run*), and harvest the faulty nodes' outedge
//!    traces.
//! 3. Re-run with correct nodes afresh and the faulty nodes *replaying*
//!    the harvested traces ([`ReplayDevice::masquerade`]) — exactly the
//!    behavior [`Certificate::verify`] will later reconstruct, which is
//!    what makes the certificate reproduce bit-for-bit.
//! 4. Check the spec's agreement condition over the correct nodes minus
//!    any the degradation policy reclassified; if the faulty + degraded
//!    set exceeds the budget `f`, the probe is an incident (the finding
//!    would be outside the claimed fault model), not a violation.
//! 5. Wrap a violation as a single-link [`Certificate`] and self-verify
//!    it before reporting anything.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use flm_core::certificate::{Certificate, ChainLink, Theorem, Violation};
use flm_core::problems;
use flm_core::refute::AsyncCertificate;
use flm_core::shrink;
use flm_graph::{Graph, NodeId};
use flm_protocols::registry;
use flm_sim::async_sched::Strategy;
use flm_sim::campaign::{
    CampaignConfig, CampaignReport, GraphFamily, Incident, ProblemKind, RunSpec, ScenarioDims,
    SchedulerKind, ViolationRecord,
};
use flm_sim::replay::ReplayDevice;
use flm_sim::system::System;
use flm_sim::{
    contain_panics, EdgeBehavior, FaultPlan, Input, Protocol, RunPolicy, SystemBehavior,
};

/// Shrink-probe budget per violation: generous enough to walk a ring down
/// from hundreds of nodes (halving), small enough to bound campaign time.
const MAX_SHRINK_ATTEMPTS: usize = 64;

/// A concrete probed scenario: the topology (by family + seed, so it can
/// shrink within the family), the fault plan, and the run horizon.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Topology family.
    pub family: GraphFamily,
    /// Seed the family is built under.
    pub graph_seed: u64,
    /// The fault plan injected.
    pub plan: FaultPlan,
    /// Ticks the system runs.
    pub horizon: u32,
}

impl Scenario {
    /// The scenario's size in the shrinker's partial order.
    pub fn dims(&self) -> ScenarioDims {
        ScenarioDims {
            nodes: self.family.node_count(),
            rules: self.plan.rules().len(),
            horizon: self.horizon,
        }
    }
}

/// A concrete asynchronous probed scenario: the topology and the fairness
/// budget (deliveries) the scheduling adversary gets. There is no fault
/// plan — the adversary *is* the fault — so the shrinker's axes are the
/// graph family and the budget, and shrinking the budget shrinks the
/// witness schedule with it (a schedule never exceeds its budget).
#[derive(Debug, Clone)]
pub struct AsyncScenario {
    /// Topology family.
    pub family: GraphFamily,
    /// Seed the family is built under.
    pub graph_seed: u64,
    /// Which asynchronous chooser drives delivery.
    pub scheduler: SchedulerKind,
    /// Fairness budget in deliveries (`RunPolicy::max_ticks`).
    pub budget: u32,
}

impl AsyncScenario {
    /// The scenario's size in the shrinker's partial order: the budget
    /// rides in the `horizon` slot.
    pub fn dims(&self) -> ScenarioDims {
        ScenarioDims {
            nodes: self.family.node_count(),
            rules: 0,
            horizon: self.budget,
        }
    }
}

/// The strategy subset a scheduler kind probes: just the fair chooser, or
/// just the starvation adversaries from the refuter's default ladder.
fn async_strategies(scheduler: SchedulerKind, g: &Graph) -> Vec<Strategy> {
    match scheduler {
        SchedulerKind::Sync => unreachable!("sync cells never reach the async prober"),
        SchedulerKind::AsyncFair => vec![Strategy::Fair],
        SchedulerKind::AsyncAdversarial => flm_core::refute::default_strategies(g)
            .into_iter()
            .filter(|s| matches!(s, Strategy::Adversarial { .. }))
            .collect(),
    }
}

/// Probes one asynchronous scenario. `Ok(Some(cert))` is a self-verified
/// [`AsyncCertificate`]; `Ok(None)` means every explored schedule decided
/// and agreed; `Err((stage, detail))` is incident material.
pub fn probe_async(
    protocol: &dyn flm_sim::Protocol,
    scenario: &AsyncScenario,
    policy: &RunPolicy,
) -> Result<Option<AsyncCertificate>, (String, String)> {
    let g = scenario
        .family
        .build(scenario.graph_seed)
        .map_err(|e| ("build".to_string(), e.to_string()))?;
    let mut policy = *policy;
    policy.max_ticks = scenario.budget;
    let strategies = async_strategies(scenario.scheduler, &g);
    match flm_core::with_policy(policy, || {
        flm_core::refute::flp_async_under(protocol, &g, &strategies)
    }) {
        Ok(cert) => {
            cert.verify(protocol)
                .map_err(|e| ("self-check".to_string(), e.to_string()))?;
            Ok(Some(cert))
        }
        Err(flm_core::refute::RefuteError::Unrefuted { .. }) => Ok(None),
        Err(e) => Err(("async".to_string(), e.to_string())),
    }
}

/// Strictly smaller async candidates: shrink the graph within its family,
/// halve or decrement the fairness budget.
fn async_shrink_candidates(s: &AsyncScenario) -> Vec<(AsyncScenario, ScenarioDims)> {
    let mut out = Vec::new();
    for family in s.family.shrink_candidates() {
        let cand = AsyncScenario {
            family,
            ..s.clone()
        };
        let dims = cand.dims();
        out.push((cand, dims));
    }
    if s.budget > 1 {
        for b in [s.budget / 2, s.budget - 1] {
            if b >= 1 && b < s.budget {
                let cand = AsyncScenario {
                    budget: b,
                    ..s.clone()
                };
                let dims = cand.dims();
                out.push((cand, dims));
            }
        }
    }
    out
}

/// Shrinks an asynchronous violation to a local minimum that still refutes
/// the same condition — same [`shrink::greedy`] loop as the synchronous
/// path, generic over the certificate type. A smaller budget forces a
/// shorter witness schedule, so the emitted certificate's schedule shrinks
/// along with the scenario.
pub fn shrink_async_violation(
    protocol: &dyn flm_sim::Protocol,
    scenario: AsyncScenario,
    certificate: AsyncCertificate,
    policy: &RunPolicy,
) -> shrink::ShrinkOutcome<AsyncScenario, AsyncCertificate> {
    let original = certificate.condition;
    let dims = scenario.dims();
    shrink::greedy(
        scenario,
        certificate,
        dims,
        async_shrink_candidates,
        |cand| {
            let cert = probe_async(protocol, cand, policy).ok()??;
            if cert.condition != original {
                return None;
            }
            Some(cert)
        },
        MAX_SHRINK_ATTEMPTS,
    )
}

/// The FLM theorem family a campaign certificate is filed under.
fn theorem_for(problem: ProblemKind) -> Theorem {
    match problem {
        ProblemKind::ByzantineAgreement => Theorem::BaNodes,
        ProblemKind::WeakAgreement => Theorem::WeakAgreement,
        ProblemKind::FiringSquad => Theorem::FiringSquad,
        ProblemKind::ApproxAgreement => Theorem::SimpleApprox,
    }
}

/// The campaign's fixed input pattern per problem kind (deterministic, so
/// certificates reproduce): split boolean inputs for the agreement
/// problems, a stimulus at node 0 for the firing squad, evenly spread
/// reals for approximate agreement.
fn input_for(problem: ProblemKind, v: NodeId, n: usize) -> Input {
    match problem {
        ProblemKind::ByzantineAgreement | ProblemKind::WeakAgreement => {
            Input::Bool(v.0.is_multiple_of(2))
        }
        ProblemKind::FiringSquad => Input::Bool(v.0 == 0),
        ProblemKind::ApproxAgreement => Input::Real(f64::from(v.0) / n.max(1) as f64),
    }
}

/// Builds the system for a run: correct nodes get fresh protocol devices
/// (wrapped by the plan where it names them as senders), every device
/// construction contained.
fn faulted_system(
    protocol: &dyn Protocol,
    g: &Graph,
    plan: &FaultPlan,
    problem: ProblemKind,
) -> Result<System, String> {
    let n = g.node_count();
    let mut sys = System::new(g.clone());
    for v in g.nodes() {
        let device = contain_panics(|| protocol.device(g, v))
            .map_err(|msg| format!("device construction for {v} panicked: {msg}"))?;
        sys.assign(v, plan.wrap(v, device), input_for(problem, v, n));
    }
    Ok(sys)
}

/// Canonical bytes for the faulted run's assembly minus the horizon: the
/// problem's input pattern, the protocol, the topology, the fault plan
/// (seed and every rule), and the policy. The horizon stays out so shrink
/// probes that shorten a scenario share the longer run's tick snapshots.
fn faulted_static(
    problem: ProblemKind,
    protocol: &dyn Protocol,
    g: &Graph,
    scenario: &Scenario,
    policy: &RunPolicy,
) -> Vec<u8> {
    use flm_sim::faults::FaultAction;
    let mut w = flm_sim::wire::Writer::new();
    w.str("campaignfaulted");
    w.u8(match problem {
        ProblemKind::ByzantineAgreement => 0,
        ProblemKind::WeakAgreement => 1,
        ProblemKind::FiringSquad => 2,
        ProblemKind::ApproxAgreement => 3,
    });
    w.str(&protocol.name());
    w.bytes(&g.to_bytes());
    w.u64(scenario.plan.seed());
    let rules = scenario.plan.rules();
    w.u32(rules.len() as u32);
    for r in rules {
        w.u32(r.from.0);
        match r.to {
            None => {
                w.u8(0);
            }
            Some(v) => {
                w.u8(1).u32(v.0);
            }
        }
        w.u32(r.from_tick).u32(r.until_tick);
        match r.action {
            FaultAction::Drop => {
                w.u8(0);
            }
            FaultAction::Corrupt => {
                w.u8(1);
            }
            FaultAction::Equivocate => {
                w.u8(2);
            }
            FaultAction::Delay(d) => {
                w.u8(3).u32(d);
            }
        }
    }
    policy.encode(&mut w);
    w.finish()
}

/// Whole-run cache key for the faulted run: the static assembly plus the
/// horizon.
fn faulted_key(
    problem: ProblemKind,
    protocol: &dyn Protocol,
    g: &Graph,
    scenario: &Scenario,
    policy: &RunPolicy,
) -> flm_sim::runcache::RunKey {
    let mut payload = faulted_static(problem, protocol, g, scenario, policy);
    payload.extend_from_slice(&scenario.horizon.to_le_bytes());
    flm_sim::runcache::RunKey::new("campaignfaulted", payload)
}

/// Prefix schedule for the faulted run: static assembly, no scripted nodes
/// (the fault injectors wrap real devices, which fork with them).
fn faulted_schedule(
    problem: ProblemKind,
    protocol: &dyn Protocol,
    g: &Graph,
    scenario: &Scenario,
    policy: &RunPolicy,
) -> flm_sim::prefixcache::PrefixSchedule {
    flm_sim::prefixcache::PrefixSchedule::new(
        faulted_static(problem, protocol, g, scenario, policy),
        Vec::new(),
    )
}

/// Probes one scenario. `Ok(Some(cert))` is a self-verified violation
/// certificate; `Ok(None)` means the protocol survived; `Err((stage,
/// detail))` is incident material.
pub fn probe(
    problem: ProblemKind,
    protocol: &dyn Protocol,
    scenario: &Scenario,
    f: usize,
    policy: &RunPolicy,
) -> Result<Option<Certificate>, (String, String)> {
    let stage = |s: &'static str| move |detail: String| (s.to_string(), detail);
    let g = scenario
        .family
        .build(scenario.graph_seed)
        .map_err(|e| ("build".into(), e.to_string()))?;

    // Faulted run: the plan's injectors distort what the faulty senders
    // put on the wire; harvest those distorted outedge traces. Memoized
    // with a horizon-free prefix schedule (no scripted nodes), so shrink
    // probes that only shorten the horizon fork a stored tick snapshot —
    // usually the completion snapshot, skipping re-simulation entirely.
    let key = faulted_key(problem, protocol, &g, scenario, policy);
    let schedule = faulted_schedule(problem, protocol, &g, scenario, policy);
    let faulted = flm_sim::prefixcache::memoize_prefixed(
        &key,
        &schedule,
        scenario.horizon,
        policy,
        || faulted_system(protocol, &g, &scenario.plan, problem).map_err(stage("run")),
        |e| ("run".into(), e.to_string()),
    )?;
    let faulty: BTreeSet<NodeId> = scenario
        .plan
        .faulty_nodes()
        .into_iter()
        .filter(|v| v.index() < g.node_count())
        .collect();
    let correct: Vec<NodeId> = g.nodes().filter(|v| !faulty.contains(v)).collect();
    let masquerade: Vec<(NodeId, Vec<EdgeBehavior>)> = faulty
        .iter()
        .map(|&v| {
            let traces: Vec<EdgeBehavior> =
                g.neighbors(v).map(|w| faulted.edge(v, w).clone()).collect();
            (v, traces)
        })
        .collect();

    // Replay run: fresh correct devices, faulty nodes masquerading — the
    // exact behavior `Certificate::verify` reconstructs. Routed through the
    // shared link-run memoizer, so a violation's self-check rebuild is a
    // whole-run cache hit instead of a third simulation.
    let n = g.node_count();
    let replay_inputs: Vec<Input> = (0..n)
        .map(|i| input_for(problem, NodeId(i as u32), n))
        .collect();
    let behavior = flm_core::refute::memoize_link_run(
        &protocol.name(),
        &g,
        &correct,
        &masquerade,
        &replay_inputs,
        scenario.horizon,
        policy,
        || {
            let mut sys = System::new(g.clone());
            for &v in &correct {
                let device = contain_panics(|| protocol.device(&g, v))
                    .map_err(|msg| ("replay".into(), format!("device for {v} panicked: {msg}")))?;
                sys.assign(v, device, input_for(problem, v, n));
            }
            for (v, traces) in &masquerade {
                sys.assign(
                    *v,
                    Box::new(ReplayDevice::masquerade(traces.clone())),
                    input_for(problem, *v, n),
                );
            }
            Ok(sys)
        },
        |e| ("replay".into(), e.to_string()),
    )?;

    // Degradation accounting: nodes the containment policy quarantined
    // count against the fault budget. Blowing the budget means any
    // violation would sit outside the claimed fault model — incident.
    let degraded: Vec<NodeId> = behavior
        .misbehaving_nodes()
        .into_iter()
        .filter(|v| !faulty.contains(v))
        .collect();
    if faulty.len() + degraded.len() > f {
        return Err((
            "budget".into(),
            format!(
                "{} planned faulty + {} degraded nodes exceed f={f}",
                faulty.len(),
                degraded.len()
            ),
        ));
    }
    let effective: BTreeSet<NodeId> = correct
        .iter()
        .copied()
        .filter(|v| !degraded.contains(v))
        .collect();
    if effective.is_empty() {
        return Err(("budget".into(), "no effective correct nodes left".into()));
    }
    let all_correct = faulty.is_empty() && degraded.is_empty();

    let violation = match check(problem, &behavior, &effective, all_correct) {
        Ok(()) => return Ok(None),
        Err(v) => v,
    };

    let cert = Certificate {
        theorem: theorem_for(problem),
        protocol: protocol.name(),
        base: g,
        f,
        covering: format!(
            "chaos campaign: {} under {} fault rules (plan seed {:#x}); the faulted run's \
             outedge traces are the masquerade, so the Fault axiom licenses this behavior \
             directly — no covering transplant involved",
            scenario.family.name(),
            scenario.plan.rules().len(),
            scenario.plan.seed(),
        ),
        chain: vec![ChainLink {
            correct,
            masquerade,
            inputs: replay_inputs,
            scenario_matched: true,
            decisions: behavior.decisions(),
            horizon: scenario.horizon,
            misbehavior: behavior.misbehavior().to_vec(),
            degraded,
        }],
        policy: *policy,
        violation,
    };
    // Self-check before reporting anything: a certificate the audit path
    // would reject is a campaign bug, not a finding.
    cert.verify(protocol)
        .map_err(|e| ("self-check".into(), e.to_string()))?;
    Ok(Some(cert))
}

/// Runs the problem's condition checker over the effective correct set.
fn check(
    problem: ProblemKind,
    behavior: &SystemBehavior,
    effective: &BTreeSet<NodeId>,
    all_correct: bool,
) -> Result<(), Violation> {
    match problem {
        ProblemKind::ByzantineAgreement => problems::byzantine_agreement(behavior, effective, 0),
        ProblemKind::WeakAgreement => problems::weak_agreement(behavior, effective, all_correct, 0),
        ProblemKind::FiringSquad => problems::firing_squad(behavior, effective, all_correct, 0),
        ProblemKind::ApproxAgreement => problems::simple_approx(behavior, effective, 0),
    }
}

/// Strictly smaller scenario candidates, in the deterministic order the
/// shrinker probes them: drop one fault rule (each index), shrink the
/// graph within its family (restricting the plan to surviving edges),
/// halve or decrement the horizon.
fn shrink_candidates(s: &Scenario) -> Vec<(Scenario, ScenarioDims)> {
    let mut out = Vec::new();
    for i in 0..s.plan.rules().len() {
        let cand = Scenario {
            plan: s.plan.clone().without_rule(i),
            ..s.clone()
        };
        let dims = cand.dims();
        out.push((cand, dims));
    }
    for family in s.family.shrink_candidates() {
        if let Ok(g) = family.build(s.graph_seed) {
            let cand = Scenario {
                family,
                graph_seed: s.graph_seed,
                plan: s.plan.clone().restricted_to(&g),
                horizon: s.horizon,
            };
            let dims = cand.dims();
            out.push((cand, dims));
        }
    }
    if s.horizon > 1 {
        for h in [s.horizon / 2, s.horizon - 1] {
            if h >= 1 && h < s.horizon {
                let cand = Scenario {
                    horizon: h,
                    ..s.clone()
                };
                let dims = cand.dims();
                out.push((cand, dims));
            }
        }
    }
    out
}

/// Shrinks a violating scenario to a local minimum that still refutes the
/// *same condition* through the full verify path.
pub fn shrink_violation(
    problem: ProblemKind,
    protocol: &dyn Protocol,
    scenario: Scenario,
    certificate: Certificate,
    f: usize,
    policy: &RunPolicy,
) -> shrink::ShrinkOutcome<Scenario> {
    let original = certificate.violation.condition;
    let dims = scenario.dims();
    shrink::greedy(
        scenario,
        certificate,
        dims,
        shrink_candidates,
        |cand| {
            let cert = probe(problem, protocol, cand, f, policy).ok()??;
            shrink::reverify_same_condition(&cert, protocol, original).ok()?;
            Some(cert)
        },
        MAX_SHRINK_ATTEMPTS,
    )
}

/// What a campaign produced: the report plus the shrunk certificates as
/// `(file name, FLMC bytes)` pairs, in spec order. Pure data — writing to
/// disk is [`write_campaign`]'s job, so tests can assert byte-identity
/// without touching the filesystem.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The deterministic campaign report.
    pub report: CampaignReport,
    /// Certificate files: deterministic names, portable FLMC bytes.
    pub certs: Vec<(String, Vec<u8>)>,
}

enum ProbeResult {
    Clean,
    Violation(Box<(Scenario, Certificate)>),
    AsyncViolation(Box<(AsyncScenario, AsyncCertificate)>),
    Incident(Incident),
}

/// Runs the full campaign: probe every spec in parallel (input-ordered,
/// so parallelism never perturbs the output), shrink every violation,
/// emit certificates and the report.
pub fn run_campaign(config: &CampaignConfig) -> CampaignOutcome {
    let specs = config.specs();
    let runs = specs.len();
    let results: Vec<(RunSpec, ProbeResult)> = flm_par::par_map(specs, |spec| {
        let result = probe_spec(&spec, config);
        (spec, result)
    });

    let mut incidents = Vec::new();
    let mut found: Vec<(RunSpec, Scenario, Certificate)> = Vec::new();
    let mut found_async: Vec<(RunSpec, AsyncScenario, AsyncCertificate)> = Vec::new();
    for (spec, result) in results {
        match result {
            ProbeResult::Clean => {}
            ProbeResult::Incident(incident) => incidents.push(incident),
            ProbeResult::Violation(boxed) => {
                let (scenario, cert) = *boxed;
                found.push((spec, scenario, cert));
            }
            ProbeResult::AsyncViolation(boxed) => {
                let (scenario, cert) = *boxed;
                found_async.push((spec, scenario, cert));
            }
        }
    }

    let shrunk: Vec<Option<(RunSpec, Scenario, shrink::ShrinkOutcome<Scenario>)>> =
        flm_par::par_map(found, |(spec, scenario, cert)| {
            let protocol = match flm_protocols::resolve(&spec.protocol) {
                Ok(p) => p,
                Err(_) => return None,
            };
            let original = scenario.clone();
            let outcome = shrink_violation(
                spec.problem,
                &*protocol,
                scenario,
                cert,
                spec.f,
                &config.policy,
            );
            Some((spec, original, outcome))
        });
    type ShrunkAsync = (
        RunSpec,
        AsyncScenario,
        shrink::ShrinkOutcome<AsyncScenario, AsyncCertificate>,
    );
    let shrunk_async: Vec<Option<ShrunkAsync>> =
        flm_par::par_map(found_async, |(spec, scenario, cert)| {
            let protocol = match flm_protocols::resolve(&spec.protocol) {
                Ok(p) => p,
                Err(_) => return None,
            };
            let original = scenario.clone();
            let outcome = shrink_async_violation(&*protocol, scenario, cert, &config.policy);
            Some((spec, original, outcome))
        });

    let mut violations = Vec::new();
    let mut certs = Vec::new();
    for (spec, original, outcome) in shrunk.into_iter().flatten() {
        let cert_file = format!("c{:03}-{}.flmc", spec.index, spec.problem.name());
        violations.push(ViolationRecord {
            spec: spec.index,
            problem: spec.problem.name().into(),
            protocol: spec.protocol.clone(),
            graph: original.family.name(),
            scheduler: spec.scheduler.name().into(),
            condition: outcome.certificate.violation.condition.to_string(),
            original: original.dims(),
            shrunk: outcome.dims,
            shrink_attempts: outcome.attempts,
            shrink_accepted: outcome.accepted,
            cert_file: cert_file.clone(),
        });
        certs.push((cert_file, outcome.certificate.to_bytes()));
    }
    for (spec, original, outcome) in shrunk_async.into_iter().flatten() {
        let cert_file = format!("c{:03}-flp-async.flmc", spec.index);
        violations.push(ViolationRecord {
            spec: spec.index,
            problem: spec.problem.name().into(),
            protocol: spec.protocol.clone(),
            graph: original.family.name(),
            scheduler: spec.scheduler.name().into(),
            condition: outcome.certificate.condition.to_string(),
            original: original.dims(),
            shrunk: outcome.dims,
            shrink_attempts: outcome.attempts,
            shrink_accepted: outcome.accepted,
            cert_file: cert_file.clone(),
        });
        certs.push((cert_file, outcome.certificate.to_bytes()));
    }
    // Interleaved probes finish in input order per pass; merging the two
    // passes by spec index keeps the report and file list deterministic.
    violations.sort_by_key(|v| v.spec);
    certs.sort();

    CampaignOutcome {
        report: CampaignReport {
            seed: config.seed,
            protocols: config.protocols.len(),
            graphs: config.graphs.len(),
            rule_counts: config.rule_counts.len(),
            schedulers: config.schedulers.len(),
            runs,
            violations,
            incidents,
        },
        certs,
    }
}

/// Probes one spec end to end, folding every failure into an incident.
fn probe_spec(spec: &RunSpec, config: &CampaignConfig) -> ProbeResult {
    let incident = |stage: &str, detail: String| {
        ProbeResult::Incident(Incident {
            spec: spec.index,
            stage: stage.into(),
            detail,
        })
    };
    let protocol = match flm_protocols::resolve(&spec.protocol) {
        Ok(p) => p,
        Err(e) => return incident("resolve", e.to_string()),
    };
    if spec.scheduler != SchedulerKind::Sync {
        let scenario = AsyncScenario {
            family: spec.graph,
            graph_seed: spec.graph_seed,
            scheduler: spec.scheduler,
            budget: config.policy.max_ticks.max(1),
        };
        return match probe_async(&*protocol, &scenario, &config.policy) {
            Ok(Some(cert)) => ProbeResult::AsyncViolation(Box::new((scenario, cert))),
            Ok(None) => ProbeResult::Clean,
            Err((stage, detail)) => incident(&stage, detail),
        };
    }
    let g = match spec.graph.build(spec.graph_seed) {
        Ok(g) => g,
        Err(e) => return incident("build", e.to_string()),
    };
    let horizon = protocol
        .horizon(&g)
        .clamp(1, config.policy.max_ticks.max(1));
    let scenario = Scenario {
        family: spec.graph,
        graph_seed: spec.graph_seed,
        plan: spec.plan(&g, horizon),
        horizon,
    };
    match probe(spec.problem, &*protocol, &scenario, spec.f, &config.policy) {
        Ok(Some(cert)) => ProbeResult::Violation(Box::new((scenario, cert))),
        Ok(None) => ProbeResult::Clean,
        Err((stage, detail)) => incident(&stage, detail),
    }
}

/// The fixed smoke campaign `check.sh --campaign-smoke` and the
/// integration tests run: the full protocol zoo over four small topology
/// families, fault-free and 2-rule plans, `f = 1`.
pub fn smoke_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        protocols: registry::zoo(1),
        graphs: vec![
            GraphFamily::Ring { n: 6 },
            GraphFamily::Complete { n: 4 },
            GraphFamily::RandomRegular { n: 8, d: 3 },
            GraphFamily::Expander { n: 8 },
        ],
        rule_counts: vec![0, 2],
        schedulers: vec![SchedulerKind::Sync],
        f: 1,
        policy: RunPolicy::default(),
    }
}

/// The default full campaign `regen --campaign` runs: the smoke families
/// plus larger seeded graphs, a giant 1200-node covering ring, and deeper
/// fault plans.
pub fn full_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        protocols: registry::zoo(1),
        graphs: vec![
            GraphFamily::Ring { n: 6 },
            GraphFamily::Complete { n: 4 },
            GraphFamily::Complete { n: 7 },
            GraphFamily::RandomRegular { n: 12, d: 3 },
            GraphFamily::Expander { n: 16 },
            GraphFamily::RingCover {
                base: 3,
                weight: 400,
            },
            GraphFamily::RingCover { base: 4, weight: 4 },
        ],
        rule_counts: vec![0, 2, 4],
        schedulers: vec![SchedulerKind::Sync],
        f: 1,
        policy: RunPolicy::default(),
    }
}

/// Widens a config's scheduler axis and — when an async kind joins the
/// sweep — folds the registry's asynchronous prey into the protocol list,
/// so the axis has something the scheduling adversary can actually starve.
/// The sync axis alone leaves the config byte-for-byte compatible with the
/// classic campaign (same specs, same certificates).
pub fn with_schedulers(
    mut config: CampaignConfig,
    schedulers: Vec<SchedulerKind>,
) -> CampaignConfig {
    if schedulers.iter().any(|&k| k != SchedulerKind::Sync) {
        for (problem, name) in registry::async_zoo(config.f) {
            if !config.protocols.iter().any(|(_, p)| *p == name) {
                config.protocols.push((problem, name));
            }
        }
    }
    config.schedulers = schedulers;
    config
}

/// Writes a campaign's certificates and `campaign_report.json` under
/// `dir` (created if absent) and returns the report path.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing a file.
pub fn write_campaign(outcome: &CampaignOutcome, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    for (name, bytes) in &outcome.certs {
        std::fs::write(dir.join(name), bytes)?;
    }
    let report_path = dir.join("campaign_report.json");
    std::fs::write(&report_path, outcome.report.to_json())?;
    Ok(report_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_table_protocol_breaking_agreement() {
        let protocol = flm_protocols::resolve("Table(7)").unwrap();
        let scenario = Scenario {
            family: GraphFamily::Ring { n: 6 },
            graph_seed: 1,
            plan: FaultPlan::new(1),
            horizon: protocol.horizon(&GraphFamily::Ring { n: 6 }.build(1).unwrap()),
        };
        let cert = probe(
            ProblemKind::ByzantineAgreement,
            &*protocol,
            &scenario,
            1,
            &RunPolicy::default(),
        )
        .unwrap()
        .expect("a random decision table must break agreement on 6 nodes");
        assert!(cert.verify(&*protocol).is_ok());
    }

    #[test]
    fn shrink_reduces_the_table_scenario() {
        let protocol = flm_protocols::resolve("Table(7)").unwrap();
        let family = GraphFamily::Ring { n: 6 };
        let g = family.build(1).unwrap();
        let horizon = protocol.horizon(&g);
        let scenario = Scenario {
            family,
            graph_seed: 1,
            plan: FaultPlan::new(1),
            horizon,
        };
        let cert = probe(
            ProblemKind::ByzantineAgreement,
            &*protocol,
            &scenario,
            1,
            &RunPolicy::default(),
        )
        .unwrap()
        .unwrap();
        let outcome = shrink_violation(
            ProblemKind::ByzantineAgreement,
            &*protocol,
            scenario.clone(),
            cert,
            1,
            &RunPolicy::default(),
        );
        assert!(
            outcome.dims.nodes < scenario.dims().nodes || outcome.dims.horizon < scenario.horizon,
            "a table violation on ring6 should shrink, got {:?}",
            outcome.dims
        );
        assert!(outcome.certificate.verify(&*protocol).is_ok());
    }

    #[test]
    fn async_probe_starves_the_prey_and_shrinks_the_budget() {
        let protocol = flm_protocols::resolve("WaitForAll").unwrap();
        let scenario = AsyncScenario {
            family: GraphFamily::Complete { n: 4 },
            graph_seed: 0,
            scheduler: SchedulerKind::AsyncAdversarial,
            budget: RunPolicy::default().max_ticks.max(1),
        };
        let cert = probe_async(&*protocol, &scenario, &RunPolicy::default())
            .unwrap()
            .expect("the starvation adversary must starve WaitForAll on K4");
        let outcome =
            shrink_async_violation(&*protocol, scenario.clone(), cert, &RunPolicy::default());
        assert!(
            outcome.dims.horizon < scenario.budget || outcome.dims.nodes < 4,
            "an async violation should shrink, got {:?}",
            outcome.dims
        );
        assert!(
            outcome.certificate.schedule.len() as u64 <= u64::from(outcome.dims.horizon),
            "the witness schedule must fit the shrunk budget"
        );
        assert!(outcome.certificate.verify(&*protocol).is_ok());
    }

    #[test]
    fn async_campaign_cells_report_their_scheduler() {
        // A one-protocol async-only campaign: the prey on two small graphs,
        // fair + adversarial axes. Deterministic end to end.
        let config = CampaignConfig {
            seed: 7,
            protocols: vec![(ProblemKind::ByzantineAgreement, "WaitForAll".into())],
            graphs: vec![
                GraphFamily::Complete { n: 3 },
                GraphFamily::Complete { n: 4 },
            ],
            rule_counts: vec![0],
            schedulers: vec![SchedulerKind::AsyncFair, SchedulerKind::AsyncAdversarial],
            f: 1,
            policy: RunPolicy::default(),
        };
        let outcome = run_campaign(&config);
        assert!(outcome.report.incidents.is_empty(), "{:?}", outcome.report);
        assert!(
            outcome
                .report
                .violations
                .iter()
                .any(|v| v.scheduler == "async-adversarial"),
            "the adversarial axis must starve the prey: {:?}",
            outcome.report.violations
        );
        for v in &outcome.report.violations {
            assert!(v.cert_file.contains("flp-async"), "{}", v.cert_file);
        }
        // Same seed, same campaign — byte-identical certificates.
        assert_eq!(run_campaign(&config), outcome);
        // Every emitted certificate decodes as a kind-2 FLMC image.
        for (_, bytes) in &outcome.certs {
            assert!(matches!(
                flm_core::codec::decode_any(bytes).unwrap(),
                flm_core::codec::AnyCertificate::Async(_)
            ));
        }
    }

    #[test]
    fn with_schedulers_folds_in_the_async_prey_only_when_asked() {
        let sync = with_schedulers(smoke_config(1), vec![SchedulerKind::Sync]);
        assert!(!sync.protocols.iter().any(|(_, p)| p == "WaitForAll"));
        let both = with_schedulers(
            smoke_config(1),
            vec![SchedulerKind::Sync, SchedulerKind::AsyncAdversarial],
        );
        assert!(both.protocols.iter().any(|(_, p)| p == "WaitForAll"));
        // NaiveMajority is already in the zoo; folding must not duplicate it.
        let majority = both
            .protocols
            .iter()
            .filter(|(_, p)| p == "NaiveMajority")
            .count();
        assert_eq!(majority, 1);
    }

    #[test]
    fn adequate_protocol_survives_its_home_graph() {
        // EIG(f=1) on K4 is the positive control: the campaign must NOT
        // report a violation for a correct protocol on an adequate graph
        // with no faults.
        let protocol = flm_protocols::resolve("EIG(f=1)").unwrap();
        let family = GraphFamily::Complete { n: 4 };
        let g = family.build(0).unwrap();
        let scenario = Scenario {
            family,
            graph_seed: 0,
            plan: FaultPlan::new(0),
            horizon: protocol.horizon(&g),
        };
        let result = probe(
            ProblemKind::ByzantineAgreement,
            &*protocol,
            &scenario,
            1,
            &RunPolicy::default(),
        );
        assert!(matches!(result, Ok(None)), "EIG on K4 must survive");
    }
}
