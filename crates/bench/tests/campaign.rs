//! Campaign acceptance tests: a fixed-seed campaign over the protocol zoo
//! (4 problem families) × 4 graph families must find violations, shrink
//! them strictly, emit certificates that pass the audit path with exit 0,
//! and reproduce byte-identically from the same seed.

use flm_bench::campaign::{run_campaign, smoke_config};
use flm_serve::audit::{audit_bytes, EXIT_VERIFIED};

#[test]
fn fixed_seed_campaign_finds_shrinks_audits_and_reproduces() {
    let config = smoke_config(0xF1A);
    // The sweep is wide enough for the acceptance bar: ≥ 3 protocol
    // families × ≥ 3 graph families.
    let problem_kinds: std::collections::BTreeSet<_> =
        config.protocols.iter().map(|(k, _)| *k).collect();
    assert!(problem_kinds.len() >= 3, "need ≥ 3 protocol families");
    assert!(config.graphs.len() >= 3, "need ≥ 3 graph families");

    let outcome = run_campaign(&config);
    assert_eq!(
        outcome.report.runs,
        config.protocols.len() * config.graphs.len() * config.rule_counts.len()
    );

    // Finds at least one violation (random-table and naive protocols are
    // guaranteed prey), and every probe ended structurally: violation,
    // clean, or incident — the campaign itself never crashed to get here.
    assert!(
        !outcome.report.violations.is_empty(),
        "campaign found no violations"
    );
    assert_eq!(outcome.certs.len(), outcome.report.violations.len());

    // Shrinking: never grows, and at least one violation got strictly
    // smaller in nodes or fault-plan entries.
    for v in &outcome.report.violations {
        assert!(v.shrunk.nodes <= v.original.nodes, "{v:?} grew in nodes");
        assert!(v.shrunk.rules <= v.original.rules, "{v:?} grew in rules");
        assert!(
            v.shrunk.horizon <= v.original.horizon,
            "{v:?} grew in horizon"
        );
    }
    assert!(
        outcome
            .report
            .violations
            .iter()
            .any(|v| v.shrunk.nodes < v.original.nodes || v.shrunk.rules < v.original.rules),
        "no violation shrank in nodes or rules: {:#?}",
        outcome.report.violations
    );
    assert!(outcome.report.mean_shrink_ratio() > 1.0);

    // Every emitted certificate passes the audit path with exit 0 — the
    // same verdict logic `flm-audit` runs on the file.
    for (name, bytes) in &outcome.certs {
        let audit = audit_bytes(bytes, false);
        assert_eq!(
            audit.exit_code, EXIT_VERIFIED,
            "{name} failed audit: {}",
            audit.diagnostics
        );
    }

    // Same seed ⇒ byte-identical certificates and report.
    let again = run_campaign(&config);
    assert_eq!(
        outcome.report.to_json(),
        again.report.to_json(),
        "report not reproducible"
    );
    assert_eq!(outcome.certs, again.certs, "certificates not reproducible");

    // A different seed changes derived plans/graphs — the sweep actually
    // depends on its seed.
    let other = run_campaign(&smoke_config(0xBEE));
    assert_ne!(outcome.report.to_json(), other.report.to_json());
}

#[test]
fn campaign_incidents_are_structured_not_crashes() {
    // A degenerate graph family in the sweep must surface as a `build`
    // incident while the rest of the campaign proceeds normally.
    let mut config = smoke_config(3);
    config
        .graphs
        .push(flm_sim::campaign::GraphFamily::RandomRegular { n: 5, d: 3 });
    let outcome = run_campaign(&config);
    assert!(
        outcome.report.incidents.iter().any(|i| i.stage == "build"),
        "degenerate builder parameters should be build incidents: {:?}",
        outcome.report.incidents
    );
    assert!(!outcome.report.violations.is_empty());
}
