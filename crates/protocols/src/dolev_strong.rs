//! Authenticated Byzantine agreement (Dolev–Strong).
//!
//! The paper remarks (§2) that the impossibility results hinge on the full
//! strength of the Fault axiom, and that adding an *unforgeable signature*
//! assumption defeats them \[LSP, PSL\]. This module makes that remark
//! runnable: with the simulated signatures of [`flm_sim::auth`], the
//! Dolev–Strong protocol reaches agreement with `n ≥ 2f + 1` nodes — in
//! particular on the **triangle with one fault**, squarely inside the
//! unauthenticated impossibility region.
//!
//! Construction: every node runs a Dolev–Strong authenticated broadcast of
//! its own input (`f + 1` rounds of signature-chain relaying); after the
//! broadcasts, every correct node holds the *same* vector of per-sender
//! outputs and decides its majority.

use std::collections::BTreeSet;

use flm_graph::{Graph, NodeId};
use flm_sim::auth::{AuthDomain, Sig, Signer};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Protocol, Tick};

/// The Dolev–Strong authenticated agreement protocol for `f` faults.
///
/// Holds the signature domain; every device receives a [`Signer`] that can
/// sign **only as its own node** (see [`flm_sim::auth`] for why this models
/// unforgeability).
#[derive(Debug, Clone)]
pub struct DolevStrong {
    f: usize,
    domain: AuthDomain,
}

impl DolevStrong {
    /// Creates the protocol for fault budget `f` with a signature domain
    /// derived from `seed`.
    pub fn new(f: usize, seed: u64) -> Self {
        DolevStrong {
            f,
            domain: AuthDomain::new(seed),
        }
    }

    /// The signer handle for `node` — exposed so adversary devices in tests
    /// can receive exactly the signing power a faulty node would have.
    pub fn signer_for(&self, node: NodeId) -> Signer {
        self.domain.signer_for(node)
    }
}

impl Protocol for DolevStrong {
    fn name(&self) -> String {
        format!("DolevStrong(f={})", self.f)
    }

    /// # Panics
    ///
    /// Panics if `g` is not complete.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        let n = g.node_count();
        assert!(g.is_complete(), "Dolev-Strong requires the complete graph");
        Box::new(DolevStrongDevice::new(n, self.f, self.domain.signer_for(v)))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        self.f as u32 + 3
    }
}

/// A signature chain: a value endorsed by a sequence of distinct signers,
/// the first being the instance's sender.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chain {
    instance: u32,
    value: bool,
    sigs: Vec<(u32, Sig)>,
}

impl Chain {
    fn message(instance: u32, value: bool) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(instance).bool(value);
        w.finish()
    }

    /// Validates the chain: `len` signatures, distinct signers, first signer
    /// is the instance sender, all signatures verify.
    fn valid(&self, verifier: &Signer, n: usize, len: usize) -> bool {
        if self.sigs.len() != len || self.instance as usize >= n {
            return false;
        }
        if self.sigs.first().map(|s| s.0) != Some(self.instance) {
            return false;
        }
        let signers: BTreeSet<u32> = self.sigs.iter().map(|s| s.0).collect();
        if signers.len() != self.sigs.len() {
            return false;
        }
        let msg = Chain::message(self.instance, self.value);
        self.sigs
            .iter()
            .all(|&(node, sig)| (node as usize) < n && verifier.verify(NodeId(node), &msg, sig))
    }
}

/// The per-node Dolev–Strong state machine.
#[derive(Clone)]
pub struct DolevStrongDevice {
    n: usize,
    f: usize,
    signer: Signer,
    input: bool,
    /// `extracted[s]` = set of values with accepted chains in instance `s`.
    extracted: Vec<BTreeSet<bool>>,
    /// Chains to relay in the next round.
    outbox: Vec<Chain>,
    decided: Option<bool>,
}

impl DolevStrongDevice {
    /// Creates the device; `signer` must be the signer for this node.
    pub fn new(n: usize, f: usize, signer: Signer) -> Self {
        DolevStrongDevice {
            n,
            f,
            signer,
            input: false,
            extracted: vec![BTreeSet::new(); n],
            outbox: Vec::new(),
            decided: None,
        }
    }

    fn encode(chains: &[Chain]) -> Payload {
        let mut w = Writer::new();
        w.u32(chains.len() as u32);
        for c in chains {
            w.u32(c.instance).bool(c.value).u8(c.sigs.len() as u8);
            for &(node, sig) in &c.sigs {
                w.u32(node).u64(sig);
            }
        }
        w.finish().into()
    }

    fn decode(payload: &[u8]) -> Vec<Chain> {
        let mut out = Vec::new();
        let mut r = Reader::new(payload);
        let Ok(count) = r.u32() else { return out };
        for _ in 0..count.min(1024) {
            let (Ok(instance), Ok(value), Ok(len)) = (r.u32(), r.bool(), r.u8()) else {
                return out;
            };
            let mut sigs = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let (Ok(node), Ok(sig)) = (r.u32(), r.u64()) else {
                    return out;
                };
                sigs.push((node, sig));
            }
            out.push(Chain {
                instance,
                value,
                sigs,
            });
        }
        out
    }

    /// The per-instance broadcast outputs: the extracted value when exactly
    /// one exists, the default `false` otherwise.
    fn instance_outputs(&self) -> Vec<bool> {
        self.extracted
            .iter()
            .map(|set| {
                if set.len() == 1 {
                    *set.iter().next().expect("len checked")
                } else {
                    false
                }
            })
            .collect()
    }
}

impl Device for DolevStrongDevice {
    fn name(&self) -> &'static str {
        "DolevStrong"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input.as_bool().unwrap_or(false);
        debug_assert_eq!(ctx.node, self.signer.node(), "signer must match node");
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let tick = t.index();
        let me = self.signer.node().0;
        // Receive: round `tick` chains carry exactly `tick` signatures.
        if tick >= 1 && tick <= self.f + 1 {
            for m in inbox.iter().flatten() {
                for chain in Self::decode(m) {
                    if !chain.valid(&self.signer, self.n, tick) {
                        continue;
                    }
                    if chain.sigs.iter().any(|&(node, _)| node == me) {
                        continue; // already endorsed by us; nothing new
                    }
                    let inst = chain.instance as usize;
                    if self.extracted[inst].contains(&chain.value) {
                        continue;
                    }
                    self.extracted[inst].insert(chain.value);
                    // Endorse and relay (unless this was the last round).
                    if tick <= self.f {
                        let msg = Chain::message(chain.instance, chain.value);
                        let mut sigs = chain.sigs.clone();
                        sigs.push((me, self.signer.sign(&msg)));
                        self.outbox.push(Chain {
                            instance: chain.instance,
                            value: chain.value,
                            sigs,
                        });
                    }
                }
            }
        }
        if tick == self.f + 1 && self.decided.is_none() {
            let outputs = self.instance_outputs();
            let ones = outputs.iter().filter(|&&b| b).count();
            self.decided = Some(2 * ones > self.n);
        }
        // Send.
        if tick == 0 {
            let msg = Chain::message(me, self.input);
            let chain = Chain {
                instance: me,
                value: self.input,
                sigs: vec![(me, self.signer.sign(&msg))],
            };
            self.extracted[me as usize].insert(self.input);
            let payload = Self::encode(std::slice::from_ref(&chain));
            return inbox.iter().map(|_| Some(payload.clone())).collect();
        }
        if tick <= self.f && !self.outbox.is_empty() {
            let chains = std::mem::take(&mut self.outbox);
            let payload = Self::encode(&chains);
            return inbox.iter().map(|_| Some(payload.clone())).collect();
        }
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut state = Vec::new();
        for set in &self.extracted {
            state.push(set.len() as u8);
            for &v in set {
                state.push(u8::from(v));
            }
        }
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::{Decision, Input};

    #[test]
    fn all_honest_triangle_agrees() {
        for input in [false, true] {
            let b = testkit::run_honest(&DolevStrong::new(1, 7), &builders::triangle(), &|_| {
                Input::Bool(input)
            });
            for v in b.graph().nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)));
            }
        }
    }

    #[test]
    fn beats_the_3f_bound_on_the_triangle() {
        // n = 3 = 3f with f = 1: impossible without signatures (Theorem 1),
        // solvable with them — the paper's §2 remark.
        testkit::assert_byzantine_agreement(&DolevStrong::new(1, 11), &builders::triangle(), 1, 10);
    }

    #[test]
    fn works_on_k5_with_two_faults() {
        // n = 5 = 2f + 3 > 2f: fine for authenticated agreement even though
        // 5 < 3f + 1 = 7.
        testkit::assert_byzantine_agreement(&DolevStrong::new(2, 13), &builders::complete(5), 2, 4);
    }

    #[test]
    fn chain_validation_rejects_forgeries() {
        let proto = DolevStrong::new(1, 3);
        let a = proto.signer_for(NodeId(0));
        let b = proto.signer_for(NodeId(1));
        let msg = Chain::message(0, true);
        let good = Chain {
            instance: 0,
            value: true,
            sigs: vec![(0, a.sign(&msg))],
        };
        assert!(good.valid(&b, 3, 1));
        // Wrong signer claimed.
        let forged = Chain {
            instance: 0,
            value: true,
            sigs: vec![(0, b.sign(&msg))],
        };
        assert!(!forged.valid(&b, 3, 1));
        // First signer must be the instance sender.
        let misrooted = Chain {
            instance: 0,
            value: true,
            sigs: vec![(1, b.sign(&msg))],
        };
        assert!(!misrooted.valid(&b, 3, 1));
        // Duplicate signers.
        let dup = Chain {
            instance: 0,
            value: true,
            sigs: vec![(0, a.sign(&msg)), (0, a.sign(&msg))],
        };
        assert!(!dup.valid(&b, 3, 2));
    }
}
