//! Test harness shared by the protocol suites (and reused by the workspace
//! integration tests): run a protocol with a chosen fault pattern and check
//! the classic agreement/validity conditions.
//!
//! This is the *achievability* side's counterpart of `flm-core`'s problem
//! specs: deliberately simple, exhaustive over small fault subsets, and
//! driven by the adversary zoo in [`flm_sim::adversary`].

use std::cell::RefCell;
use std::collections::BTreeSet;

use flm_graph::{Graph, NodeId};
use flm_sim::adversary::{strategy, STRATEGY_COUNT};
use flm_sim::device::Device;
use flm_sim::{Decision, Input, Protocol, RunScratch, System, SystemBehavior};

thread_local! {
    // One scratch arena per test thread: the exhaustive suites run thousands
    // of small systems back to back, and reusing the edge-table and inbox
    // buffers keeps the sweeps out of the allocator.
    static SCRATCH: RefCell<RunScratch> = RefCell::new(RunScratch::new());
}

/// Runs `protocol` on `graph` with every node honest and the given inputs.
pub fn run_honest(
    protocol: &dyn Protocol,
    graph: &Graph,
    inputs: &dyn Fn(NodeId) -> Input,
) -> SystemBehavior {
    run_with_faults(protocol, graph, inputs, Vec::new())
}

/// Runs `protocol` with the devices in `faulty` replacing the protocol's
/// devices at their nodes. The horizon is `protocol.horizon(graph)`.
pub fn run_with_faults(
    protocol: &dyn Protocol,
    graph: &Graph,
    inputs: &dyn Fn(NodeId) -> Input,
    faulty: Vec<(NodeId, Box<dyn Device>)>,
) -> SystemBehavior {
    let mut sys = System::new(graph.clone());
    let faulty_ids: BTreeSet<NodeId> = faulty.iter().map(|(v, _)| *v).collect();
    for v in graph.nodes() {
        if !faulty_ids.contains(&v) {
            sys.assign(v, protocol.device(graph, v), inputs(v));
        }
    }
    for (v, d) in faulty {
        sys.assign(v, d, Input::None);
    }
    SCRATCH
        .with(|s| sys.try_run_with_scratch(protocol.horizon(graph), &mut s.borrow_mut()))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// All node subsets of size exactly `k`, for exhaustive fault placement.
pub fn subsets_of_size(graph: &Graph, k: usize) -> Vec<Vec<NodeId>> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut out = Vec::new();
    let mut pick = Vec::new();
    fn rec(
        nodes: &[NodeId],
        start: usize,
        k: usize,
        pick: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if pick.len() == k {
            out.push(pick.clone());
            return;
        }
        for i in start..nodes.len() {
            pick.push(nodes[i]);
            rec(nodes, i + 1, k, pick, out);
            pick.pop();
        }
    }
    rec(&nodes, 0, k, &mut pick, &mut out);
    out
}

/// The standard Boolean input patterns used across the suites.
pub fn bool_patterns(n: usize) -> Vec<Vec<bool>> {
    let mut pats = vec![
        vec![false; n],
        vec![true; n],
        (0..n).map(|i| i % 2 == 0).collect(),
        (0..n).map(|i| i == 0).collect(),
    ];
    pats.dedup();
    pats
}

/// Result of one Byzantine-agreement condition check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaViolation {
    /// Some correct node never decided.
    NoDecision(NodeId),
    /// Two correct nodes decided differently.
    Disagreement(NodeId, NodeId),
    /// All correct nodes shared an input yet decided otherwise.
    InvalidDecision(NodeId),
}

/// Checks the Byzantine-agreement conditions over the correct nodes of a
/// behavior: everyone decided, everyone agrees, and if all correct inputs
/// coincide the common decision equals them.
pub fn check_byzantine_agreement(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
) -> Result<(), BaViolation> {
    let mut first: Option<(NodeId, bool)> = None;
    for &v in correct {
        let d = match behavior.node(v).decision() {
            Some(Decision::Bool(b)) => b,
            _ => return Err(BaViolation::NoDecision(v)),
        };
        match first {
            None => first = Some((v, d)),
            Some((w, e)) if e != d => return Err(BaViolation::Disagreement(w, v)),
            _ => {}
        }
    }
    let inputs: BTreeSet<Option<bool>> = correct
        .iter()
        .map(|&v| behavior.node(v).input.as_bool())
        .collect();
    if inputs.len() == 1 {
        if let Some(common) = inputs.into_iter().next().flatten() {
            if let Some((v, d)) = first {
                if d != common {
                    return Err(BaViolation::InvalidDecision(v));
                }
            }
        }
    }
    Ok(())
}

/// Exhaustively checks Byzantine agreement for `protocol` on `graph` with
/// exactly `f` faulty nodes: every fault placement × every zoo strategy ×
/// `seeds` random seeds × every standard input pattern.
///
/// # Panics
///
/// Panics with a description of the first violated condition.
pub fn assert_byzantine_agreement(protocol: &dyn Protocol, graph: &Graph, f: usize, seeds: u64) {
    let n = graph.node_count();
    for faulty_set in subsets_of_size(graph, f) {
        let correct: BTreeSet<NodeId> = graph.nodes().filter(|v| !faulty_set.contains(v)).collect();
        for strat in 0..STRATEGY_COUNT {
            for seed in 0..seeds.max(1) {
                for pattern in bool_patterns(n) {
                    let inputs = |v: NodeId| Input::Bool(pattern[v.index()]);
                    let faulty: Vec<(NodeId, Box<dyn Device>)> = faulty_set
                        .iter()
                        .map(|&v| {
                            let honest = || protocol.device(graph, v);
                            (v, strategy(strat, seed ^ u64::from(v.0) << 8, &honest))
                        })
                        .collect();
                    let b = run_with_faults(protocol, graph, &inputs, faulty);
                    if let Err(viol) = check_byzantine_agreement(&b, &correct) {
                        panic!(
                            "{} violated {:?} with faulty={:?} strategy={} seed={} pattern={:?}",
                            protocol.name(),
                            viol,
                            faulty_set,
                            strat,
                            seed,
                            pattern
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::devices::ConstantDevice;

    struct ConstantProto;
    impl Protocol for ConstantProto {
        fn name(&self) -> String {
            "Constant".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(ConstantDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            1
        }
    }

    #[test]
    fn subsets_enumerate_combinations() {
        let g = builders::complete(4);
        assert_eq!(subsets_of_size(&g, 0).len(), 1);
        assert_eq!(subsets_of_size(&g, 1).len(), 4);
        assert_eq!(subsets_of_size(&g, 2).len(), 6);
    }

    #[test]
    fn constant_protocol_fails_agreement_on_mixed_inputs() {
        let g = builders::complete(3);
        let b = run_honest(&ConstantProto, &g, &|v| Input::Bool(v.0 == 0));
        let all: BTreeSet<NodeId> = g.nodes().collect();
        assert!(matches!(
            check_byzantine_agreement(&b, &all),
            Err(BaViolation::Disagreement(_, _))
        ));
    }

    #[test]
    fn constant_protocol_passes_on_common_inputs() {
        let g = builders::complete(3);
        let b = run_honest(&ConstantProto, &g, &|_| Input::Bool(true));
        let all: BTreeSet<NodeId> = g.nodes().collect();
        assert_eq!(check_byzantine_agreement(&b, &all), Ok(()));
    }

    #[test]
    fn bool_patterns_cover_extremes() {
        let pats = bool_patterns(4);
        assert!(pats.contains(&vec![false; 4]));
        assert!(pats.contains(&vec![true; 4]));
    }
}
