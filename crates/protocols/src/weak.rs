//! Weak agreement by reduction to Byzantine agreement.
//!
//! Weak agreement (§4) keeps the agreement condition but weakens validity:
//! the chosen value must match the common input only when *all* nodes are
//! correct. Any Byzantine-agreement protocol therefore also solves weak
//! agreement (its validity condition is strictly stronger), so the upper
//! bound is inherited from [`crate::eig::Eig`] — and the point of §4 is that
//! the *lower* bound does not weaken: `3f+1` nodes and `2f+1` connectivity
//! are still required (under the Bounded-Delay Locality axiom).

use flm_graph::{Graph, NodeId};
use flm_sim::device::Device;
use flm_sim::Protocol;

use crate::eig::Eig;

/// Weak agreement via a Byzantine-agreement protocol (EIG).
#[derive(Debug, Clone, Copy)]
pub struct WeakViaBa {
    inner: Eig,
}

impl WeakViaBa {
    /// Creates the protocol for fault budget `f`.
    pub fn new(f: usize) -> Self {
        WeakViaBa { inner: Eig::new(f) }
    }
}

impl Protocol for WeakViaBa {
    fn name(&self) -> String {
        format!("WeakViaBA({})", self.inner.name())
    }

    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        self.inner.device(g, v)
    }

    fn horizon(&self, g: &Graph) -> u32 {
        self.inner.horizon(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::{Decision, Input};

    #[test]
    fn weak_validity_when_all_correct() {
        // All correct, common input: must choose it (the weak validity
        // premise is satisfied).
        for input in [false, true] {
            let b = testkit::run_honest(&WeakViaBa::new(1), &builders::complete(4), &|_| {
                Input::Bool(input)
            });
            for v in b.graph().nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)));
            }
        }
    }

    #[test]
    fn weak_agreement_under_faults() {
        // Weak agreement's agreement condition is the same as BA's; the BA
        // checker's validity premise (all *correct* share an input) is
        // stronger than weak validity, so passing it implies weak agreement.
        testkit::assert_byzantine_agreement(&WeakViaBa::new(1), &builders::complete(4), 1, 10);
    }
}
