//! Consensus protocols demonstrating *tightness* of the FLM bounds.
//!
//! The paper proves that Byzantine agreement, weak agreement, the Byzantine
//! firing squad, approximate agreement, and clock synchronization are
//! unsolvable in *inadequate* graphs (fewer than `3f+1` nodes or less than
//! `2f+1` connectivity). This crate supplies the matching upper bounds — the
//! protocols that succeed the moment the graph is adequate:
//!
//! * [`eig::Eig`] — exponential information gathering Byzantine agreement
//!   (`n ≥ 3f+1`, `f+1` rounds) \[PSL\].
//! * [`phase_king::PhaseKing`] — constant-message-size agreement
//!   (`n > 4f`), a baseline trading resilience for simplicity.
//! * [`dolev_strong::DolevStrong`] — *authenticated* agreement, correct for
//!   any `n ≥ f+2`. Signatures weaken the Fault axiom, which is exactly why
//!   this protocol escapes the `3f+1` bound (§2's remark made runnable).
//! * [`approx::Dlpsw`] — iterated trimmed-mean approximate agreement
//!   (`n ≥ 3f+1`) \[DLPSW\].
//! * [`weak::WeakViaBa`] — weak agreement by reduction to Byzantine
//!   agreement.
//! * [`fast_weak::FastWeakDevice`] — the §4 footnote-4 construction: weak
//!   agreement with *any* number of faults when transmission delay has no
//!   positive lower bound (the sensitivity remark, runnable).
//! * [`firing_squad::FiringSquadViaBa`] — the Byzantine firing squad by
//!   parallel agreement on the stimulus.
//! * [`clock_sync`] — clock-synchronization devices: the optimal
//!   communication-free lower-envelope device, plus over-claiming devices
//!   for the Theorem 8 refuter to defeat.
//! * [`relay::Relayed`] — Dolev's observation \[D\]: with `2f+1` vertex
//!   disjoint paths per pair, any protocol written for the complete graph
//!   runs on any `2f+1`-connected graph. This is what carries every upper
//!   bound from `K_n` to general adequate graphs.
//! * [`waitall::WaitForAll`] — the FLP-style refuter's prey: decides the
//!   OR of its neighborhood once every neighbor has been heard, so it
//!   terminates under every fair schedule but hangs forever when the
//!   scheduling adversary starves one node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod clock_sync;
pub mod dolev_strong;
pub mod eig;
pub mod fast_weak;
pub mod firing_squad;
pub mod phase_king;
pub mod registry;
pub mod relay;
pub mod waitall;
pub mod weak;

pub mod testkit;

pub use approx::Dlpsw;
pub use dolev_strong::DolevStrong;
pub use eig::Eig;
pub use firing_squad::FiringSquadViaBa;
pub use phase_king::PhaseKing;
pub use registry::{resolve, resolve_clock, RegistryError};
pub use relay::Relayed;
pub use waitall::WaitForAll;
pub use weak::WeakViaBa;
