//! Named protocol constructors: from a certificate's recorded protocol
//! string back to a runnable protocol.
//!
//! A [`crate::Certificate`-style](flm_sim::Protocol) audit trail records
//! only the protocol's *name* — `EIG(f=1)`, `DLPSW(f=1, R=4)` — because a
//! certificate file must stay portable: no trait objects, no closures. This
//! registry is the inverse map. [`resolve`] parses every name the in-tree
//! protocols produce and returns the protocol it names, so `flm-audit` can
//! re-verify a certificate from the file alone.
//!
//! The grammar is exactly the set of `Protocol::name` outputs:
//!
//! | name | protocol |
//! |---|---|
//! | `EIG(f=N)` | [`Eig`] |
//! | `PhaseKing(f=N)` | [`PhaseKing`] |
//! | `DolevStrong(f=N)` | [`DolevStrong`] (canonical signature seed 0) |
//! | `DLPSW(f=N, R=M)` | [`Dlpsw`] |
//! | `WeakViaBA(EIG(f=N))` | [`WeakViaBa`] |
//! | `FiringSquadViaBA(f=N)` | [`FiringSquadViaBa`] |
//! | `Relayed(INNER, f=N)` | [`Relayed`] over a resolved `INNER` |
//! | `NaiveMajority` | [`NaiveMajority`] |
//! | `WaitForAll` | [`WaitForAll`] (the FLP refuter's prey) |
//! | `Table(SEED)` | [`Table`] |
//!
//! and, for clock certificates ([`resolve_clock`]):
//!
//! | name | protocol |
//! |---|---|
//! | `TrivialClockSync` | [`TrivialClockSync`] with the identity envelope |
//! | `AveragingClockSync(period=P)` | [`AveragingClockSync`], identity envelope |
//!
//! Two names are lossy on purpose: `DolevStrong` does not record its
//! signature-domain seed (any seed yields the same message *shapes*, and
//! certificates replay faulty traffic byte-for-byte, so re-verification
//! needs the canonical seed 0 build to be the one audited), and the clock
//! protocols do not record their envelope function `l` — the registry
//! builds them with the identity envelope the canonical claims use.

use std::fmt;

use flm_graph::{Graph, NodeId};
use flm_sim::devices::{NaiveMajorityDevice, TableDevice};
use flm_sim::{ClockProtocol, Device, Protocol};

use crate::clock_sync::{AveragingClockSync, TrivialClockSync};
use crate::{Dlpsw, DolevStrong, Eig, FiringSquadViaBa, PhaseKing, Relayed, WaitForAll, WeakViaBa};

/// Error from [`resolve`]/[`resolve_clock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name matches no registered protocol pattern.
    UnknownProtocol {
        /// The unparseable name.
        name: String,
    },
    /// The name matched a pattern but a parameter is out of range.
    BadParameter {
        /// The offending name.
        name: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownProtocol { name } => {
                write!(f, "no registered protocol is named {name:?}")
            }
            RegistryError::BadParameter { name, reason } => {
                write!(f, "bad parameter in protocol name {name:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One-round majority voting (the connectivity-experiment candidate); runs
/// on any graph, horizon 3.
#[derive(Debug, Clone, Copy)]
pub struct NaiveMajority;

impl Protocol for NaiveMajority {
    fn name(&self) -> String {
        "NaiveMajority".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        3
    }
}

/// A seeded pseudo-random table protocol; the experiment sweeps use it to
/// approximate the theorems' universal quantifier, horizon 5.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    /// Seed selecting the protocol; node `v` runs a table seeded
    /// `seed ^ v`.
    pub seed: u64,
}

impl Protocol for Table {
    fn name(&self) -> String {
        format!("Table({})", self.seed)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        Box::new(TableDevice::new(self.seed ^ u64::from(v.0), 3))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        5
    }
}

/// A resolved protocol as a trait object, so [`Relayed`] can wrap it.
struct BoxedProtocol(Box<dyn Protocol>);

impl Protocol for BoxedProtocol {
    fn name(&self) -> String {
        self.0.name()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        self.0.device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        self.0.horizon(g)
    }
}

/// Strips `prefix` and a trailing `)`, returning the parameter text.
fn params<'a>(name: &'a str, prefix: &str) -> Option<&'a str> {
    name.strip_prefix(prefix)?.strip_suffix(')')
}

fn parse_usize(name: &str, text: &str) -> Result<usize, RegistryError> {
    text.parse().map_err(|_| RegistryError::BadParameter {
        name: name.into(),
        reason: format!("{text:?} is not a valid count"),
    })
}

/// Resolves a discrete protocol by its recorded name.
///
/// # Errors
///
/// [`RegistryError::UnknownProtocol`] when the name matches no pattern;
/// [`RegistryError::BadParameter`] when a matched parameter fails to parse.
pub fn resolve(name: &str) -> Result<Box<dyn Protocol>, RegistryError> {
    if name == "NaiveMajority" {
        return Ok(Box::new(NaiveMajority));
    }
    if name == "WaitForAll" {
        return Ok(Box::new(WaitForAll));
    }
    if let Some(p) = params(name, "EIG(f=") {
        return Ok(Box::new(Eig::new(parse_usize(name, p)?)));
    }
    if let Some(p) = params(name, "PhaseKing(f=") {
        return Ok(Box::new(PhaseKing::new(parse_usize(name, p)?)));
    }
    if let Some(p) = params(name, "DolevStrong(f=") {
        // Canonical signature seed: certificates do not record the domain.
        return Ok(Box::new(DolevStrong::new(parse_usize(name, p)?, 0)));
    }
    if let Some(p) = params(name, "FiringSquadViaBA(f=") {
        return Ok(Box::new(FiringSquadViaBa::new(parse_usize(name, p)?)));
    }
    if let Some(p) = params(name, "DLPSW(f=") {
        let (f_text, r_text) = p
            .split_once(", R=")
            .ok_or_else(|| RegistryError::UnknownProtocol { name: name.into() })?;
        let f = parse_usize(name, f_text)?;
        let rounds = parse_usize(name, r_text)? as u32;
        return Ok(Box::new(Dlpsw::new(f, rounds)));
    }
    if let Some(p) = params(name, "WeakViaBA(") {
        // The wrapper is EIG-backed; its name embeds the inner EIG's.
        if let Some(f_text) = params(p, "EIG(f=") {
            return Ok(Box::new(WeakViaBa::new(parse_usize(name, f_text)?)));
        }
        return Err(RegistryError::UnknownProtocol { name: name.into() });
    }
    if let Some(p) = params(name, "Table(") {
        let seed: u64 = p.parse().map_err(|_| RegistryError::BadParameter {
            name: name.into(),
            reason: format!("{p:?} is not a valid seed"),
        })?;
        return Ok(Box::new(Table { seed }));
    }
    if let Some(p) = params(name, "Relayed(") {
        // The inner name may itself contain ", f=" (e.g. a nested DLPSW),
        // so split at the *last* occurrence — the wrapper's own budget.
        let (inner_name, f_text) = p
            .rsplit_once(", f=")
            .ok_or_else(|| RegistryError::UnknownProtocol { name: name.into() })?;
        let f = parse_usize(name, f_text)?;
        let inner = BoxedProtocol(resolve(inner_name)?);
        return Ok(Box::new(Relayed::new(inner, f)));
    }
    Err(RegistryError::UnknownProtocol { name: name.into() })
}

/// Resolves a clock-synchronization protocol by its recorded name.
///
/// # Errors
///
/// See [`resolve`].
pub fn resolve_clock(name: &str) -> Result<Box<dyn ClockProtocol>, RegistryError> {
    use flm_sim::clock::TimeFn;
    if name == "TrivialClockSync" {
        return Ok(Box::new(TrivialClockSync {
            l: TimeFn::identity(),
        }));
    }
    if let Some(p) = params(name, "AveragingClockSync(period=") {
        let period: f64 = p.parse().map_err(|_| RegistryError::BadParameter {
            name: name.into(),
            reason: format!("{p:?} is not a valid period"),
        })?;
        if !(period.is_finite() && period > 0.0) {
            return Err(RegistryError::BadParameter {
                name: name.into(),
                reason: format!("period must be positive and finite, got {period}"),
            });
        }
        return Ok(Box::new(AveragingClockSync {
            l: TimeFn::identity(),
            period,
        }));
    }
    Err(RegistryError::UnknownProtocol { name: name.into() })
}

/// The protocol zoo for chaos campaigns: every in-tree discrete protocol
/// worth sweeping, tagged with the agreement condition
/// ([`flm_sim::campaign::ProblemKind`]) a campaign probe should check it
/// against, for fault budget `f`. Every returned name resolves through
/// [`resolve`] — the registry tests enforce it — so campaign certificates
/// recording these names always re-verify.
///
/// The order is fixed (part of the campaign determinism contract):
/// Byzantine agreement first (strong protocols, then the deliberately weak
/// `NaiveMajority` and the random `Table` strawmen that give campaigns
/// guaranteed prey), then weak agreement, the firing squad, and
/// approximate agreement.
pub fn zoo(f: usize) -> Vec<(flm_sim::campaign::ProblemKind, String)> {
    use flm_sim::campaign::ProblemKind;
    vec![
        (ProblemKind::ByzantineAgreement, format!("EIG(f={f})")),
        (ProblemKind::ByzantineAgreement, format!("PhaseKing(f={f})")),
        (
            ProblemKind::ByzantineAgreement,
            format!("DolevStrong(f={f})"),
        ),
        (ProblemKind::ByzantineAgreement, "NaiveMajority".into()),
        (ProblemKind::ByzantineAgreement, "Table(7)".into()),
        (ProblemKind::WeakAgreement, format!("WeakViaBA(EIG(f={f}))")),
        (ProblemKind::FiringSquad, format!("FiringSquadViaBA(f={f})")),
        (ProblemKind::ApproxAgreement, format!("DLPSW(f={f}, R=4)")),
    ]
}

/// The async-capable slice of the zoo: protocols whose devices behave
/// sensibly when stepped one delivery at a time (tolerant of partial
/// inboxes, no reliance on global round structure). Async campaign sweeps
/// and the FLP refuter probe these; `WaitForAll` is the guaranteed prey —
/// it decides under every fair schedule and hangs under the starvation
/// adversary. The sync [`zoo`] is deliberately untouched, so synchronous
/// campaigns reproduce exactly what they always did.
pub fn async_zoo(_f: usize) -> Vec<(flm_sim::campaign::ProblemKind, String)> {
    use flm_sim::campaign::ProblemKind;
    vec![
        (ProblemKind::ByzantineAgreement, "WaitForAll".into()),
        (ProblemKind::ByzantineAgreement, "NaiveMajority".into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    /// Every registered protocol's name must resolve back to a protocol
    /// with the *same* name — the property `flm-audit` relies on.
    #[test]
    fn resolution_inverts_naming() {
        let names = [
            "EIG(f=1)",
            "EIG(f=2)",
            "PhaseKing(f=1)",
            "DolevStrong(f=1)",
            "DLPSW(f=1, R=4)",
            "WeakViaBA(EIG(f=1))",
            "FiringSquadViaBA(f=1)",
            "NaiveMajority",
            "WaitForAll",
            "Table(42)",
            "Relayed(EIG(f=1), f=1)",
            "Relayed(DLPSW(f=1, R=4), f=1)",
        ];
        for name in names {
            let p = resolve(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn resolved_protocols_are_runnable() {
        let g = builders::complete(4);
        for name in ["EIG(f=1)", "NaiveMajority", "Table(7)"] {
            let p = resolve(name).unwrap();
            let _ = p.device(&g, NodeId(0));
            assert!(p.horizon(&g) >= 1);
        }
    }

    #[test]
    fn clock_resolution_inverts_naming() {
        for name in ["TrivialClockSync", "AveragingClockSync(period=2)"] {
            let p = resolve_clock(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn malformed_names_are_structured_errors() {
        for name in [
            "",
            "EIG",
            "EIG(f=)",
            "EIG(f=x)",
            "EIG(f=1",
            "DLPSW(f=1)",
            "WeakViaBA(PhaseKing(f=1))",
            "Relayed(EIG(f=1))",
            "Mystery(f=1)",
            "Table(-3)",
        ] {
            assert!(resolve(name).is_err(), "{name:?} should not resolve");
        }
        assert!(resolve_clock("AveragingClockSync(period=-1)").is_err());
        assert!(resolve_clock("AveragingClockSync(period=NaN)").is_err());
        assert!(resolve_clock("Mystery").is_err());
    }

    #[test]
    fn every_zoo_entry_resolves_and_round_trips() {
        use flm_sim::campaign::ProblemKind;
        for f in [1usize, 2] {
            let entries = zoo(f);
            assert!(entries.len() >= 8);
            let kinds: std::collections::BTreeSet<ProblemKind> =
                entries.iter().map(|(k, _)| *k).collect();
            assert_eq!(kinds.len(), 4, "zoo must span all four problem kinds");
            for (kind, name) in entries {
                let p =
                    resolve(&name).unwrap_or_else(|e| panic!("zoo entry {name:?} ({kind:?}): {e}"));
                assert_eq!(p.name(), name, "zoo names must be canonical");
            }
        }
        // Determinism: the zoo is a fixed list.
        assert_eq!(zoo(1), zoo(1));
    }

    #[test]
    fn async_zoo_entries_resolve_and_include_the_prey() {
        let entries = async_zoo(1);
        assert!(entries.iter().any(|(_, n)| n == "WaitForAll"));
        for (_, name) in &entries {
            let p = resolve(name).unwrap_or_else(|e| panic!("async zoo entry {name:?}: {e}"));
            assert_eq!(&p.name(), name);
        }
        assert_eq!(async_zoo(1), async_zoo(1));
    }
}
