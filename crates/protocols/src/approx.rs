//! DLPSW approximate agreement: iterated trimmed-range midpoint.
//!
//! The synchronous approximate-agreement algorithm of Dolev, Lynch, Pinter,
//! Stark & Weihl \[DLPSW\] for `n ≥ 3f + 1` on the complete graph: each
//! round every node broadcasts its value, discards the `f` lowest and `f`
//! highest values received, and moves to the midpoint of what remains. The
//! diameter of the correct values at least halves every round, and validity
//! (staying within the correct input range) is preserved, so `R` rounds
//! achieve ε-agreement for any `ε ≥ Δ/2^R`.
//!
//! This is the matching upper bound for Theorems 5 and 6: it solves simple
//! approximate agreement (and (ε,δ,γ)-agreement for suitable `R`) exactly
//! when the graph is adequate.

use flm_graph::{Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Protocol, Tick};

/// The DLPSW protocol: `rounds` rounds tolerating `f` faults.
#[derive(Debug, Clone, Copy)]
pub struct Dlpsw {
    f: usize,
    rounds: u32,
}

impl Dlpsw {
    /// Creates the protocol with fault budget `f`, running `rounds` rounds.
    pub fn new(f: usize, rounds: u32) -> Self {
        Dlpsw { f, rounds }
    }

    /// Rounds sufficient to bring an initial spread `delta` within `eps`
    /// (each round halves the spread).
    pub fn rounds_for(delta: f64, eps: f64) -> u32 {
        let mut r = 0;
        let mut d = delta;
        while d > eps && r < 64 {
            d /= 2.0;
            r += 1;
        }
        r.max(1)
    }
}

impl Protocol for Dlpsw {
    fn name(&self) -> String {
        format!("DLPSW(f={}, R={})", self.f, self.rounds)
    }

    /// # Panics
    ///
    /// Panics if `g` is not complete.
    fn device(&self, g: &Graph, _v: NodeId) -> Box<dyn Device> {
        assert!(g.is_complete(), "DLPSW requires the complete graph");
        Box::new(DlpswDevice::new(self.f, self.rounds))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        self.rounds + 2
    }
}

/// The per-node DLPSW state machine.
#[derive(Debug, Clone)]
pub struct DlpswDevice {
    f: usize,
    rounds: u32,
    value: f64,
    decided: Option<f64>,
}

impl DlpswDevice {
    /// Creates the device for fault budget `f` and `rounds` rounds.
    pub fn new(f: usize, rounds: u32) -> Self {
        DlpswDevice {
            f,
            rounds,
            value: 0.0,
            decided: None,
        }
    }

    /// The DLPSW update rule: trim `f` from each end of the sorted values
    /// and move to the midpoint of the remaining range.
    fn reduce(&self, mut values: Vec<f64>) -> f64 {
        values.sort_by(f64::total_cmp);
        let trimmed = &values[self.f..values.len() - self.f];
        (trimmed.first().expect("n > 2f values remain")
            + trimmed.last().expect("n > 2f values remain"))
            / 2.0
    }
}

impl Device for DlpswDevice {
    fn name(&self) -> &'static str {
        "DLPSW"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.value = ctx.input.as_real().unwrap_or(0.0);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let tick = t.0;
        // Receive round `tick` values, update.
        if tick >= 1 && tick <= self.rounds {
            let mut values = vec![self.value];
            for m in inbox {
                let v = m
                    .as_deref()
                    .and_then(|m| Reader::new(m).f64().ok())
                    .filter(|v| v.is_finite())
                    // A silent or garbled sender counts as echoing us: the
                    // multiset must have exactly n entries for trimming.
                    .unwrap_or(self.value);
                values.push(v);
            }
            self.value = self.reduce(values);
        }
        if tick == self.rounds && self.decided.is_none() {
            self.decided = Some(self.value);
        }
        // Send round `tick + 1` values.
        if tick < self.rounds {
            let mut w = Writer::new();
            w.f64(self.value);
            // One encode; each port's Some(...) is an Arc refcount bump.
            let payload: Payload = w.finish().into();
            return inbox.iter().map(|_| Some(payload.clone())).collect();
        }
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        let state = self.value.to_bits().to_be_bytes();
        match self.decided {
            Some(v) => snapshot::decided_real(v, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::adversary::{strategy, STRATEGY_COUNT};
    use flm_sim::{Decision, Input};
    use std::collections::BTreeSet;

    fn real_decisions(b: &flm_sim::SystemBehavior, correct: &BTreeSet<NodeId>) -> Vec<f64> {
        correct
            .iter()
            .map(|&v| match b.node(v).decision() {
                Some(Decision::Real(r)) => r,
                other => panic!("{v} decided {other:?}, expected a real"),
            })
            .collect()
    }

    #[test]
    fn honest_run_converges_to_common_range() {
        let g = builders::complete(4);
        let b = testkit::run_honest(&Dlpsw::new(1, 6), &g, &|v| Input::Real(v.0 as f64));
        let all: BTreeSet<NodeId> = g.nodes().collect();
        let ds = real_decisions(&b, &all);
        let spread = ds.iter().cloned().fold(f64::MIN, f64::max)
            - ds.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 3.0 / 32.0 + 1e-12, "spread {spread}");
        for d in ds {
            assert!((0.0..=3.0).contains(&d));
        }
    }

    #[test]
    fn each_round_halves_the_spread_under_attack() {
        // n = 4, f = 1: one Byzantine node, every zoo strategy. After R
        // rounds the correct spread must be ≤ Δ/2^R and inside [min, max]
        // of correct inputs.
        let g = builders::complete(4);
        let rounds = 4;
        let proto = Dlpsw::new(1, rounds);
        for faulty in g.nodes() {
            let correct: BTreeSet<NodeId> = g.nodes().filter(|&v| v != faulty).collect();
            let inputs = |v: NodeId| Input::Real(f64::from(v.0)); // Δ ≤ 3
            for strat in 0..STRATEGY_COUNT {
                for seed in 0..6 {
                    let adv = strategy(strat, seed, &|| proto.device(&g, faulty));
                    let b = testkit::run_with_faults(&proto, &g, &inputs, vec![(faulty, adv)]);
                    let ds = real_decisions(&b, &correct);
                    let lo = ds.iter().cloned().fold(f64::MAX, f64::min);
                    let hi = ds.iter().cloned().fold(f64::MIN, f64::max);
                    assert!(
                        hi - lo <= 3.0 / 2f64.powi(rounds as i32) + 1e-12,
                        "spread {} (strategy {strat}, seed {seed}, faulty {faulty})",
                        hi - lo
                    );
                    // Validity: inside the correct input range.
                    let (imin, imax) = correct.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| {
                        let x = f64::from(v.0);
                        (a.min(x), b.max(x))
                    });
                    assert!(lo >= imin - 1e-12 && hi <= imax + 1e-12);
                }
            }
        }
    }

    #[test]
    fn rounds_for_targets() {
        assert_eq!(Dlpsw::rounds_for(1.0, 0.5), 1);
        assert_eq!(Dlpsw::rounds_for(1.0, 0.1), 4);
        assert_eq!(Dlpsw::rounds_for(0.0, 0.1), 1);
    }

    #[test]
    fn reduce_trims_byzantine_extremes() {
        let d = DlpswDevice::new(1, 1);
        // Byzantine value 1e9 is trimmed away.
        assert_eq!(d.reduce(vec![0.0, 1.0, 2.0, 1e9]), 1.5);
        assert_eq!(d.reduce(vec![-1e9, 0.0, 1.0, 2.0]), 0.5);
    }
}
