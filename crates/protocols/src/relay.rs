//! Dolev's relay overlay: running complete-graph protocols on sparse
//! adequate graphs \[D\].
//!
//! Theorem 1's second half says `2f+1` connectivity is *necessary*. This
//! module supplies the matching *sufficiency* construction: in a
//! `2f+1`-connected graph, every ordered pair of nodes is joined by `2f+1`
//! internally vertex-disjoint paths (Menger), and at most `f` of them pass
//! through faulty nodes. Sending each logical message as `2f+1` copies, one
//! per path, and taking the value that arrives on at least `f+1` paths gives
//! every pair a reliable virtual link — so any protocol written for the
//! complete graph (EIG, DLPSW, …) runs unchanged on the sparse graph.
//!
//! [`Relayed`] wraps an inner [`Protocol`]: logical round `k` of the inner
//! protocol executes at physical tick `k·L`, where `L` is the longest relay
//! path in hops; in between, nodes forward copies hop by hop.

use std::collections::BTreeMap;

use flm_graph::{connectivity, Graph, NodeId};
use flm_sim::device::{Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Protocol, Tick};

/// A complete-graph protocol lifted to a `2f+1`-connected graph.
#[derive(Debug, Clone)]
pub struct Relayed<P> {
    inner: P,
    f: usize,
}

impl<P: Protocol> Relayed<P> {
    /// Wraps `inner` (written for `K_n`) for execution on `2f+1`-connected
    /// graphs with fault budget `f`.
    pub fn new(inner: P, f: usize) -> Self {
        Relayed { inner, f }
    }

    /// The routing table and round length for `g`: `2f+1` vertex-disjoint
    /// paths per ordered pair, plus the longest path length in hops.
    ///
    /// # Panics
    ///
    /// Panics if some pair has fewer than `2f+1` disjoint paths (the graph
    /// is not `2f+1`-connected).
    fn routes(&self, g: &Graph) -> (Routes, u32) {
        let needed = 2 * self.f + 1;
        let mut routes = BTreeMap::new();
        let mut max_hops = 1u32;
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let mut paths = connectivity::vertex_disjoint_paths(g, u, v);
                assert!(
                    paths.len() >= needed,
                    "only {} disjoint paths between {u} and {v}; need {needed}",
                    paths.len()
                );
                // Deterministic preference: shortest paths first.
                paths.sort_by_key(Vec::len);
                paths.truncate(needed);
                for p in &paths {
                    max_hops = max_hops.max((p.len() - 1) as u32);
                }
                routes.insert((u, v), paths);
            }
        }
        (routes, max_hops)
    }
}

type Routes = BTreeMap<(NodeId, NodeId), Vec<Vec<NodeId>>>;

impl<P: Protocol> Protocol for Relayed<P> {
    fn name(&self) -> String {
        format!("Relayed({}, f={})", self.inner.name(), self.f)
    }

    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        let (routes, hops) = self.routes(g);
        let kn = flm_graph::builders::complete(g.node_count());
        let inner = self.inner.device(&kn, v);
        Box::new(RelayDevice::new(inner, g.clone(), routes, hops, self.f, v))
    }

    fn horizon(&self, g: &Graph) -> u32 {
        let (_, hops) = self.routes(g);
        let kn = flm_graph::builders::complete(g.node_count());
        self.inner.horizon(&kn) * hops + 1
    }
}

/// One relayed copy of a logical message.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Packet {
    round: u32,
    src: u32,
    dst: u32,
    path_idx: u32,
    /// Index of the hop *currently being traversed*: the packet is on the
    /// wire from `path[hop]` to `path[hop + 1]`.
    hop: u32,
    /// The logical payload; `None` is explicit silence (it must be carried
    /// so receivers can majority-vote on "said nothing" too).
    body: Option<Payload>,
}

impl Packet {
    fn encode_bundle(packets: &[Packet]) -> Payload {
        let mut w = Writer::new();
        w.u32(packets.len() as u32);
        for p in packets {
            w.u32(p.round)
                .u32(p.src)
                .u32(p.dst)
                .u32(p.path_idx)
                .u32(p.hop);
            match &p.body {
                Some(b) => {
                    w.u8(1).bytes(b);
                }
                None => {
                    w.u8(0);
                }
            }
        }
        w.finish().into()
    }

    fn decode_bundle(payload: &[u8]) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut r = Reader::new(payload);
        let Ok(count) = r.u32() else { return out };
        for _ in 0..count.min(1 << 16) {
            let (Ok(round), Ok(src), Ok(dst), Ok(path_idx), Ok(hop)) =
                (r.u32(), r.u32(), r.u32(), r.u32(), r.u32())
            else {
                return out;
            };
            let body = match r.u8() {
                Ok(1) => match r.bytes() {
                    Ok(b) => Some(Payload::from(b)),
                    Err(_) => return out,
                },
                Ok(0) => None,
                _ => return out,
            };
            out.push(Packet {
                round,
                src,
                dst,
                path_idx,
                hop,
                body,
            });
        }
        out
    }
}

/// The per-node relay state machine wrapping an inner complete-graph device.
pub struct RelayDevice {
    inner: Box<dyn Device>,
    graph: Graph,
    routes: Routes,
    /// Ticks per logical round (the longest relay path in hops).
    round_len: u32,
    f: usize,
    me: NodeId,
    /// Physical neighbors in port order.
    phys_ports: Vec<NodeId>,
    /// Logical peers (all other nodes) in inner port order.
    peers: Vec<NodeId>,
    /// Copies received: (round, src, path_idx) → body.
    copies: BTreeMap<(u32, u32, u32), Option<Payload>>,
    inner_tick: u32,
}

impl RelayDevice {
    fn new(
        inner: Box<dyn Device>,
        graph: Graph,
        routes: Routes,
        round_len: u32,
        f: usize,
        me: NodeId,
    ) -> Self {
        RelayDevice {
            inner,
            graph,
            routes,
            round_len,
            f,
            me,
            phys_ports: Vec::new(),
            peers: Vec::new(),
            copies: BTreeMap::new(),
            inner_tick: 0,
        }
    }

    /// Validates an incoming packet against the shared routing table and
    /// returns the node it should be forwarded to (`None` when this node is
    /// the destination or the packet is bogus and must be dropped).
    fn route_next(&self, p: &Packet, arrived_from: NodeId) -> RouteDecision {
        let (src, dst) = (NodeId(p.src), NodeId(p.dst));
        let Some(paths) = self.routes.get(&(src, dst)) else {
            return RouteDecision::Drop;
        };
        let Some(path) = paths.get(p.path_idx as usize) else {
            return RouteDecision::Drop;
        };
        let hop = p.hop as usize;
        // The packet claims to have traversed path[hop] → path[hop+1] = me.
        if hop + 1 >= path.len() || path[hop + 1] != self.me || path[hop] != arrived_from {
            return RouteDecision::Drop;
        }
        if hop + 2 == path.len() {
            debug_assert_eq!(path[hop + 1], dst);
            RouteDecision::Deliver
        } else {
            RouteDecision::Forward(path[hop + 2])
        }
    }

    /// The majority body among the copies recorded for `(round, src)`:
    /// the value carried by at least `f+1` disjoint paths.
    fn majority(&self, round: u32, src: u32) -> Option<Payload> {
        let mut counts: BTreeMap<&Option<Payload>, usize> = BTreeMap::new();
        for ((r, s, _), body) in &self.copies {
            if *r == round && *s == src {
                *counts.entry(body).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .find(|&(_, c)| c > self.f)
            .and_then(|(body, _)| body.clone())
    }
}

enum RouteDecision {
    Deliver,
    Forward(NodeId),
    Drop,
}

impl Device for RelayDevice {
    fn name(&self) -> &'static str {
        "Relay"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.me = ctx.node;
        self.phys_ports = ctx.ports.clone();
        self.peers = self.graph.nodes().filter(|&v| v != self.me).collect();
        let inner_ctx = NodeCtx {
            node: self.me,
            ports: self.peers.clone(),
            input: ctx.input,
        };
        self.inner.init(&inner_ctx);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        // Phase 1: absorb arriving packets — deliver or queue forwards.
        let mut out_packets: Vec<Vec<Packet>> = vec![Vec::new(); self.phys_ports.len()];
        for (port, m) in inbox.iter().enumerate() {
            let Some(m) = m else { continue };
            for mut p in Packet::decode_bundle(m) {
                match self.route_next(&p, self.phys_ports[port]) {
                    RouteDecision::Deliver => {
                        self.copies
                            .entry((p.round, p.src, p.path_idx))
                            .or_insert(p.body);
                    }
                    RouteDecision::Forward(next) => {
                        p.hop += 1;
                        let out_port = self
                            .phys_ports
                            .iter()
                            .position(|&w| w == next)
                            .expect("routing table uses graph edges");
                        out_packets[out_port].push(p);
                    }
                    RouteDecision::Drop => {}
                }
            }
        }
        // Phase 2: on a round boundary, run the inner device.
        if t.0.is_multiple_of(self.round_len) {
            let k = self.inner_tick;
            let inner_inbox: Vec<Option<Payload>> = self
                .peers
                .iter()
                .map(|&u| {
                    if k == 0 {
                        None
                    } else {
                        self.majority(k - 1, u.0)
                    }
                })
                .collect();
            let outs = self.inner.step(Tick(k), &inner_inbox);
            self.inner_tick += 1;
            // Wrap each logical output (silence included) into path copies.
            for (peer_port, body) in outs.into_iter().enumerate() {
                let dst = self.peers[peer_port];
                let paths = &self.routes[&(self.me, dst)];
                for (path_idx, path) in paths.iter().enumerate() {
                    let first_hop = path[1];
                    let out_port = self
                        .phys_ports
                        .iter()
                        .position(|&w| w == first_hop)
                        .expect("paths start with a physical edge");
                    out_packets[out_port].push(Packet {
                        round: k,
                        src: self.me.0,
                        dst: dst.0,
                        path_idx: path_idx as u32,
                        hop: 0,
                        body: body.clone(),
                    });
                }
            }
        }
        out_packets
            .into_iter()
            .map(|ps| {
                if ps.is_empty() {
                    None
                } else {
                    Some(Packet::encode_bundle(&ps))
                }
            })
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        // The inner snapshot leads so the decision tag stays in byte 0;
        // relay bookkeeping follows as a digest.
        let mut snap = self.inner.snapshot();
        let mut h = flm_sim::auth::mix64(0x6E1A);
        for ((r, s, p), body) in &self.copies {
            h = flm_sim::auth::mix64(
                h ^ u64::from(*r) ^ (u64::from(*s) << 20) ^ (u64::from(*p) << 40),
            );
            if let Some(b) = body {
                for &x in b {
                    h = flm_sim::auth::mix64(h ^ u64::from(x));
                }
            }
        }
        snap.extend_from_slice(&h.to_be_bytes());
        snap
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(RelayDevice {
            inner: self.inner.fork()?,
            graph: self.graph.clone(),
            routes: self.routes.clone(),
            round_len: self.round_len,
            f: self.f,
            me: self.me,
            phys_ports: self.phys_ports.clone(),
            peers: self.peers.clone(),
            copies: self.copies.clone(),
            inner_tick: self.inner_tick,
        }))
    }
}

/// Convenience: is `g` usable by [`Relayed`] with fault budget `f`?
pub fn supports_relay(g: &Graph, f: usize) -> bool {
    connectivity::vertex_connectivity(g) > 2 * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::Eig;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::{Decision, Input};

    /// K5 minus one edge: still 3-connected, but not complete — EIG alone
    /// cannot run on it, the relayed version can.
    fn k5_minus_edge() -> Graph {
        let mut links = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                if (u, v) != (0, 4) {
                    links.push((u, v));
                }
            }
        }
        builders::from_links(5, &links).unwrap()
    }

    #[test]
    fn wheel_and_k5_minus_edge_support_one_fault() {
        assert!(supports_relay(&k5_minus_edge(), 1));
        assert!(!supports_relay(&builders::cycle(5), 1));
    }

    #[test]
    fn relayed_eig_agrees_on_sparse_graph_all_honest() {
        let g = k5_minus_edge();
        let proto = Relayed::new(Eig::new(1), 1);
        for input in [false, true] {
            let b = testkit::run_honest(&proto, &g, &|_| Input::Bool(input));
            for v in g.nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)), "{v}");
            }
        }
    }

    #[test]
    fn relayed_eig_mixed_inputs_agree() {
        let g = k5_minus_edge();
        let proto = Relayed::new(Eig::new(1), 1);
        let b = testkit::run_honest(&proto, &g, &|v| Input::Bool(v.0 % 2 == 0));
        let first = b.node(NodeId(0)).decision();
        assert!(first.is_some());
        for v in g.nodes() {
            assert_eq!(b.node(v).decision(), first);
        }
    }

    #[test]
    fn relayed_eig_tolerates_zoo_on_sparse_graph() {
        testkit::assert_byzantine_agreement(&Relayed::new(Eig::new(1), 1), &k5_minus_edge(), 1, 4);
    }

    #[test]
    fn packet_bundles_round_trip() {
        let ps = vec![
            Packet {
                round: 3,
                src: 0,
                dst: 4,
                path_idx: 2,
                hop: 1,
                body: Some(vec![1, 2, 3].into()),
            },
            Packet {
                round: 3,
                src: 1,
                dst: 2,
                path_idx: 0,
                hop: 0,
                body: None,
            },
        ];
        assert_eq!(Packet::decode_bundle(&Packet::encode_bundle(&ps)), ps);
        assert!(Packet::decode_bundle(&[1, 2, 3]).is_empty());
    }
}
