//! Weak agreement **without** a minimum transmission delay (§4, footnote 4).
//!
//! Theorem 2 needs the Bounded-Delay Locality axiom; the paper is explicit
//! that the result is *sensitive* to it: "if there is no lower bound on
//! transmission delay, and if devices can control the delay and have
//! synchronized clocks, then we can construct an algorithm for reaching
//! weak consensus … with any number of faults."
//!
//! This module is that construction, runnable:
//!
//! * At time 0, every node broadcasts its value, **choosing** the delay so
//!   it arrives at time ½.
//! * A node that detects disagreement or a failure at time `1 − t` (a
//!   conflicting value at ½, a missing message shortly after, or an alert
//!   relayed by someone else) broadcasts a "failure detected, choose
//!   default" alert timed to arrive at `1 − t/2` — always before 1.
//! * At time 1 everyone decides: the default 0 if any alert was seen, else
//!   the (necessarily unanimous) common value.
//!
//! It uses [`ClockAction::SendWithDelay`], the simulator's deliberate
//! escape hatch from the Bounded-Delay axiom — which is exactly why the
//! Theorem 2 refuter cannot be applied to it, and why the theorem needs
//! the axiom.

use flm_graph::{Graph, NodeId};
use flm_sim::clock::{ClockAction, ClockDevice, ClockEvent};
use flm_sim::ClockProtocol;

const TIMER_CHECK: u32 = 1;
const TIMER_DECIDE: u32 = 2;
/// Wire tags.
const TAG_VALUE: u8 = 0;
const TAG_ALERT: u8 = 2;

/// The footnote-4 device. Clocks must be synchronized (identity) — the
/// construction assumes devices agree on real time.
#[derive(Debug, Clone)]
pub struct FastWeakDevice {
    input: bool,
    seen: Vec<Option<bool>>,
    alerted: bool,
    decided: Option<bool>,
}

impl FastWeakDevice {
    /// Creates the device with the node's Boolean input.
    pub fn new(input: bool) -> Self {
        FastWeakDevice {
            input,
            seen: Vec::new(),
            alerted: false,
            decided: None,
        }
    }

    /// Decodes the decision from a snapshot produced by this device.
    pub fn decision_of(snap: &[u8]) -> Option<bool> {
        match snap.first()? {
            1 => Some(*snap.get(1)? != 0),
            _ => None,
        }
    }

    /// Raise the alarm (once): broadcast an alert timed to land halfway
    /// between now and the decision instant.
    fn alert(&mut self, hw: f64) -> Vec<ClockAction> {
        if self.alerted || hw >= 1.0 {
            self.alerted = true;
            return Vec::new();
        }
        self.alerted = true;
        let delay = (1.0 - hw) / 2.0;
        (0..self.seen.len())
            .map(|port| ClockAction::SendWithDelay {
                port,
                payload: vec![TAG_ALERT].into(),
                hw_delay: delay,
            })
            .collect()
    }

    /// True when the values seen so far (own input included) conflict.
    fn conflict(&self) -> bool {
        self.seen.iter().flatten().any(|&v| v != self.input)
    }
}

impl ClockDevice for FastWeakDevice {
    fn name(&self) -> &'static str {
        "FastWeak"
    }

    fn init(&mut self, ports: usize) {
        self.seen = vec![None; ports];
    }

    fn on_event(&mut self, hw: f64, event: ClockEvent) -> Vec<ClockAction> {
        match event {
            ClockEvent::Start => {
                let mut actions: Vec<ClockAction> = (0..self.seen.len())
                    .map(|port| ClockAction::SendWithDelay {
                        port,
                        payload: vec![TAG_VALUE, u8::from(self.input)].into(),
                        hw_delay: 0.5,
                    })
                    .collect();
                actions.push(ClockAction::SetTimer {
                    id: TIMER_CHECK,
                    hw_delay: 0.6,
                });
                actions.push(ClockAction::SetTimer {
                    id: TIMER_DECIDE,
                    hw_delay: 1.0,
                });
                actions
            }
            ClockEvent::Message { port, payload } => match payload.first() {
                Some(&TAG_VALUE) if self.decided.is_none() => {
                    self.seen[port] = payload.get(1).map(|&b| b != 0);
                    if self.conflict() {
                        return self.alert(hw);
                    }
                    Vec::new()
                }
                Some(&TAG_ALERT) if self.decided.is_none() => self.alert(hw),
                _ => Vec::new(),
            },
            ClockEvent::Timer { id } => match id {
                TIMER_CHECK if self.decided.is_none() => {
                    if self.seen.iter().any(Option::is_none) || self.conflict() {
                        self.alert(hw)
                    } else {
                        Vec::new()
                    }
                }
                TIMER_DECIDE => {
                    if self.decided.is_none() {
                        self.decided = Some(if self.alerted { false } else { self.input });
                    }
                    Vec::new()
                }
                _ => Vec::new(),
            },
        }
    }

    fn logical(&self, hw: f64) -> f64 {
        hw // synchronized clocks; logical time is real time
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut s = match self.decided {
            Some(b) => vec![1, u8::from(b)],
            None => vec![0, 0],
        };
        s.push(u8::from(self.alerted));
        for v in &self.seen {
            s.push(match v {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        s
    }
}

/// Protocol wrapper: every node runs [`FastWeakDevice`] with an input map.
pub struct FastWeakAgreement {
    inputs: Vec<bool>,
}

impl FastWeakAgreement {
    /// Creates the protocol with per-node inputs.
    pub fn new(inputs: Vec<bool>) -> Self {
        FastWeakAgreement { inputs }
    }
}

impl ClockProtocol for FastWeakAgreement {
    fn name(&self) -> String {
        "FastWeakAgreement".into()
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn ClockDevice> {
        Box::new(FastWeakDevice::new(self.inputs[v.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::clock::{ClockBehavior, ClockSystem, TimeFn};

    /// A Byzantine clock-device strategy for the tests.
    #[derive(Clone, Copy)]
    enum Attack {
        Silent,
        /// Different values to different ports at time ½.
        Equivocate,
        /// A lone alert to port 0 arriving near the deadline.
        LateAlert,
        /// Consistent wrong value.
        Liar,
    }

    struct Adversary {
        attack: Attack,
        ports: usize,
    }

    impl ClockDevice for Adversary {
        fn name(&self) -> &'static str {
            "ClockAdversary"
        }
        fn init(&mut self, ports: usize) {
            self.ports = ports;
        }
        fn on_event(&mut self, _hw: f64, event: ClockEvent) -> Vec<ClockAction> {
            match (&self.attack, event) {
                (Attack::Silent, _) => Vec::new(),
                (Attack::Equivocate, ClockEvent::Start) => (0..self.ports)
                    .map(|port| ClockAction::SendWithDelay {
                        port,
                        payload: vec![TAG_VALUE, (port % 2) as u8].into(),
                        hw_delay: 0.5,
                    })
                    .collect(),
                (Attack::LateAlert, ClockEvent::Start) => vec![
                    ClockAction::SendWithDelay {
                        port: 0,
                        payload: vec![TAG_VALUE, 1].into(),
                        hw_delay: 0.5,
                    },
                    ClockAction::SendWithDelay {
                        port: 1,
                        payload: vec![TAG_VALUE, 1].into(),
                        hw_delay: 0.5,
                    },
                    ClockAction::SendWithDelay {
                        port: 0,
                        payload: vec![TAG_ALERT].into(),
                        hw_delay: 0.97,
                    },
                ],
                (Attack::Liar, ClockEvent::Start) => (0..self.ports)
                    .map(|port| ClockAction::SendWithDelay {
                        port,
                        payload: vec![TAG_VALUE, 1].into(),
                        hw_delay: 0.5,
                    })
                    .collect(),
                _ => Vec::new(),
            }
        }
        fn logical(&self, hw: f64) -> f64 {
            hw
        }
        fn snapshot(&self) -> Vec<u8> {
            b"adversary".to_vec()
        }
    }

    fn decision(b: &ClockBehavior, v: NodeId) -> Option<bool> {
        b.node_logs[v.index()]
            .iter()
            .rev()
            .find_map(|rec| FastWeakDevice::decision_of(&rec.snap))
    }

    fn run_with(attack: Option<Attack>, inputs: [bool; 3]) -> ClockBehavior {
        let g = builders::triangle();
        let mut sys = ClockSystem::new(g.clone());
        for v in g.nodes() {
            if v == NodeId(2) {
                if let Some(attack) = attack {
                    sys.assign(
                        v,
                        Box::new(Adversary { attack, ports: 0 }),
                        TimeFn::identity(),
                    );
                    continue;
                }
            }
            sys.assign(
                v,
                Box::new(FastWeakDevice::new(inputs[v.index()])),
                TimeFn::identity(),
            );
        }
        sys.run(1.5, &[])
    }

    #[test]
    fn all_correct_unanimous_decides_the_input() {
        for input in [false, true] {
            let b = run_with(None, [input; 3]);
            for v in builders::triangle().nodes() {
                assert_eq!(decision(&b, v), Some(input), "{v} input {input}");
            }
        }
    }

    #[test]
    fn all_correct_mixed_inputs_agree_on_default() {
        let b = run_with(None, [true, false, true]);
        for v in builders::triangle().nodes() {
            assert_eq!(decision(&b, v), Some(false));
        }
    }

    #[test]
    fn any_number_of_faults_on_k4() {
        // The paper's claim is stark: the construction "works with any
        // number of faults". Two Byzantine nodes out of four: the two
        // correct nodes must still agree.
        let g = builders::complete(4);
        for (s1, s2) in [
            (Attack::Equivocate, Attack::Silent),
            (Attack::Liar, Attack::LateAlert),
            (Attack::Silent, Attack::Silent),
        ] {
            for inputs in [[true, true, false, false], [false, false, true, true]] {
                let mut sys = ClockSystem::new(g.clone());
                sys.assign(
                    NodeId(0),
                    Box::new(FastWeakDevice::new(inputs[0])),
                    TimeFn::identity(),
                );
                sys.assign(
                    NodeId(1),
                    Box::new(FastWeakDevice::new(inputs[1])),
                    TimeFn::identity(),
                );
                sys.assign(
                    NodeId(2),
                    Box::new(Adversary {
                        attack: s1,
                        ports: 0,
                    }),
                    TimeFn::identity(),
                );
                sys.assign(
                    NodeId(3),
                    Box::new(Adversary {
                        attack: s2,
                        ports: 0,
                    }),
                    TimeFn::identity(),
                );
                let b = sys.run(1.5, &[]);
                let d0 = decision(&b, NodeId(0));
                let d1 = decision(&b, NodeId(1));
                assert!(d0.is_some() && d0 == d1, "{inputs:?}: {d0:?} vs {d1:?}");
            }
        }
    }

    #[test]
    fn weak_agreement_holds_under_every_attack() {
        // n = 3, f = 1 — impossible with bounded delay (Theorem 2), solved
        // here because the devices control transmission delay.
        for attack in [
            Attack::Silent,
            Attack::Equivocate,
            Attack::LateAlert,
            Attack::Liar,
        ] {
            for inputs in [
                [false, false, false],
                [true, true, true],
                [true, false, false],
            ] {
                let label = match attack {
                    Attack::Silent => "silent",
                    Attack::Equivocate => "equivocate",
                    Attack::LateAlert => "late-alert",
                    Attack::Liar => "liar",
                };
                let b = run_with(Some(attack), inputs);
                let d0 = decision(&b, NodeId(0));
                let d1 = decision(&b, NodeId(1));
                assert!(
                    d0.is_some() && d0 == d1,
                    "{label} {inputs:?}: {d0:?} vs {d1:?}"
                );
            }
        }
    }
}
