//! Exponential Information Gathering (EIG) Byzantine agreement \[PSL\].
//!
//! The classic `f+1`-round protocol achieving Byzantine agreement on the
//! complete graph with `n ≥ 3f + 1` nodes — the matching upper bound for
//! Theorem 1's `3f+1` lower bound. Each node grows a tree of "who said that
//! who said …" values and resolves it bottom-up by recursive majority.
//!
//! Combined with [`crate::relay::Relayed`] it runs on every adequate graph,
//! completing the tightness picture.

use std::collections::BTreeMap;

use flm_graph::{Graph, NodeId};
use flm_sim::auth::mix64;
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Protocol, Tick};

/// A label in the EIG tree: a sequence of distinct node ids.
type Label = Vec<u32>;

/// The EIG protocol for `f` faults. See the [module docs](self).
///
/// ```
/// use flm_graph::builders;
/// use flm_protocols::{testkit, Eig};
/// use flm_sim::{Decision, Input};
///
/// // n = 4 = 3f + 1: agreement holds even under one Byzantine fault
/// // (see `testkit::assert_byzantine_agreement` for the full sweep).
/// let behavior = testkit::run_honest(&Eig::new(1), &builders::complete(4), &|v| {
///     Input::Bool(v.0 == 0)
/// });
/// let first = behavior.node(flm_graph::NodeId(0)).decision();
/// assert!(matches!(first, Some(Decision::Bool(_))));
/// # for v in behavior.graph().nodes() { assert_eq!(behavior.node(v).decision(), first); }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Eig {
    f: usize,
}

impl Eig {
    /// Creates the protocol for fault budget `f`.
    pub fn new(f: usize) -> Self {
        Eig { f }
    }

    /// The fault budget.
    pub fn fault_budget(&self) -> usize {
        self.f
    }
}

impl Protocol for Eig {
    fn name(&self) -> String {
        format!("EIG(f={})", self.f)
    }

    /// # Panics
    ///
    /// Panics if `g` is not complete — EIG is written for `K_n`; use
    /// [`crate::relay::Relayed`] for sparser adequate graphs.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        let n = g.node_count();
        assert!(g.is_complete(), "EIG requires the complete graph");
        Box::new(EigDevice::new(n, self.f, v))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        self.f as u32 + 2
    }
}

/// The per-node EIG state machine.
#[derive(Debug, Clone)]
pub struct EigDevice {
    n: usize,
    f: usize,
    me: u32,
    input: bool,
    /// The information-gathering tree: label → reported value.
    vals: BTreeMap<Label, bool>,
    decided: Option<bool>,
    /// Port → neighbor node id, fixed at init.
    port_ids: Vec<u32>,
}

impl EigDevice {
    /// Creates the device for node `me` of `K_n` with fault budget `f`.
    pub fn new(n: usize, f: usize, me: NodeId) -> Self {
        EigDevice {
            n,
            f,
            me: me.0,
            input: false,
            vals: BTreeMap::new(),
            decided: None,
            port_ids: Vec::new(),
        }
    }

    /// Encodes all level-`level` labels **not containing `me`** for
    /// broadcast.
    fn encode_level(&self, level: usize) -> Payload {
        let pairs: Vec<(&Label, &bool)> = self
            .vals
            .iter()
            .filter(|(sigma, _)| sigma.len() == level && !sigma.contains(&self.me))
            .collect();
        let mut w = Writer::new();
        w.u32(pairs.len() as u32);
        for (sigma, v) in pairs {
            w.u8(sigma.len() as u8);
            for &id in sigma {
                w.u32(id);
            }
            w.bool(*v);
        }
        w.finish().into()
    }

    /// Applies the receive rule for round `round` to a payload from node
    /// `from`: store `val(σ·from) = v` for each valid pair `(σ, v)` with
    /// `|σ| = round − 1` and `from ∉ σ`. Malformed or out-of-spec entries
    /// are ignored (Byzantine senders may emit anything).
    fn absorb(&mut self, round: usize, from: u32, payload: &[u8]) {
        let mut r = Reader::new(payload);
        let Ok(count) = r.u32() else { return };
        for _ in 0..count {
            let Ok(len) = r.u8() else { return };
            let mut sigma = Vec::with_capacity(len as usize);
            for _ in 0..len {
                match r.u32() {
                    Ok(id) => sigma.push(id),
                    Err(_) => return,
                }
            }
            let Ok(v) = r.bool() else { return };
            let distinct = {
                let mut s = sigma.clone();
                s.sort_unstable();
                s.dedup();
                s.len() == sigma.len()
            };
            if sigma.len() == round - 1
                && distinct
                && !sigma.contains(&from)
                && sigma.iter().all(|&id| (id as usize) < self.n)
            {
                let mut label = sigma;
                label.push(from);
                self.vals.entry(label).or_insert(v);
            }
        }
    }

    /// Bottom-up resolution: leaves read the stored value (default `false`),
    /// internal labels take the strict majority of their children.
    fn resolve(&self, sigma: &Label) -> bool {
        if sigma.len() == self.f + 1 {
            return self.vals.get(sigma).copied().unwrap_or(false);
        }
        let mut ones = 0usize;
        let mut total = 0usize;
        for j in 0..self.n as u32 {
            if sigma.contains(&j) {
                continue;
            }
            let mut child = sigma.clone();
            child.push(j);
            total += 1;
            if self.resolve(&child) {
                ones += 1;
            }
        }
        2 * ones > total
    }
}

impl Device for EigDevice {
    fn name(&self) -> &'static str {
        "EIG"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.me = ctx.node.0;
        self.input = ctx.input.as_bool().unwrap_or(false);
        self.port_ids = ctx.ports.iter().map(|v| v.0).collect();
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let tick = t.index();
        // Receive phase: tick r processes round-r messages (sent at r−1).
        if tick >= 1 && tick <= self.f + 1 {
            let round = tick;
            for (p, m) in inbox.iter().enumerate() {
                if let Some(m) = m {
                    self.absorb(round, self.port_ids[p], m);
                }
            }
        }
        if tick == self.f + 1 && self.decided.is_none() {
            self.decided = Some(self.resolve(&Vec::new()));
        }
        // Send phase: tick r sends round r+1 (labels of level r).
        if tick == 0 {
            self.vals.insert(vec![self.me], self.input);
            // Round 1: broadcast the input as the empty-label report.
            let mut w = Writer::new();
            w.u32(1).u8(0).bool(self.input);
            let payload: Payload = w.finish().into();
            return inbox.iter().map(|_| Some(payload.clone())).collect();
        }
        if tick <= self.f {
            let level = tick;
            // Self-delivery first: extend own level-`level` labels by `me`.
            let own: Vec<(Label, bool)> = self
                .vals
                .iter()
                .filter(|(s, _)| s.len() == level && !s.contains(&self.me))
                .map(|(s, v)| (s.clone(), *v))
                .collect();
            for (mut s, v) in own {
                s.push(self.me);
                self.vals.entry(s).or_insert(v);
            }
            let payload = self.encode_level(level);
            return inbox.iter().map(|_| Some(payload.clone())).collect();
        }
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        // Canonical digest of the tree (full serialization would be large).
        let mut h = mix64(0xE16);
        for (sigma, v) in &self.vals {
            for &id in sigma {
                h = mix64(h ^ u64::from(id));
            }
            h = mix64(h ^ 0xFF ^ u64::from(*v));
        }
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &h.to_be_bytes()),
            None => snapshot::undecided(&h.to_be_bytes()),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::{Decision, Input};

    #[test]
    fn all_honest_k4_agrees_on_common_input() {
        for input in [false, true] {
            let b = testkit::run_honest(&Eig::new(1), &builders::complete(4), &|_| {
                Input::Bool(input)
            });
            for v in b.graph().nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)));
            }
        }
    }

    #[test]
    fn mixed_inputs_still_agree() {
        let b = testkit::run_honest(&Eig::new(1), &builders::complete(4), &|v| {
            Input::Bool(v.0 % 2 == 0)
        });
        let decisions: Vec<_> = b.graph().nodes().map(|v| b.node(v).decision()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
        assert!(decisions[0].is_some());
    }

    #[test]
    fn tolerates_every_zoo_adversary_k4_f1() {
        testkit::assert_byzantine_agreement(&Eig::new(1), &builders::complete(4), 1, 20);
    }

    #[test]
    fn tolerates_every_zoo_adversary_k7_f2() {
        testkit::assert_byzantine_agreement(&Eig::new(2), &builders::complete(7), 2, 8);
    }

    #[test]
    fn resolve_majority_logic() {
        let mut d = EigDevice::new(4, 1, NodeId(0));
        // Leaves for σ = [1]: children [1,0], [1,2], [1,3].
        d.vals.insert(vec![1, 0], true);
        d.vals.insert(vec![1, 2], true);
        d.vals.insert(vec![1, 3], false);
        assert!(d.resolve(&vec![1]));
        d.vals.insert(vec![1, 2], false);
        // Re-resolve: entry API means or_insert won't overwrite; set directly.
        *d.vals.get_mut(&vec![1, 2]).unwrap() = false;
        assert!(!d.resolve(&vec![1]));
    }

    #[test]
    fn absorb_rejects_malformed_and_out_of_spec() {
        let mut d = EigDevice::new(4, 1, NodeId(0));
        // Wrong level for round 1 (|σ| must be 0).
        let mut w = Writer::new();
        w.u32(1).u8(1).u32(2).bool(true);
        d.absorb(1, 3, &w.finish());
        assert!(d.vals.is_empty());
        // Truncated garbage.
        d.absorb(1, 3, &[9, 9]);
        assert!(d.vals.is_empty());
        // Valid round-1 report from node 3.
        let mut w = Writer::new();
        w.u32(1).u8(0).bool(true);
        d.absorb(1, 3, &w.finish());
        assert_eq!(d.vals.get(&vec![3]), Some(&true));
    }
}
