//! `WaitForAll` — the FLP refuter's prey protocol.
//!
//! Each node broadcasts its Boolean input once (at its first step) and
//! then waits until it has heard from *every* neighbor before deciding the
//! OR of everything it has seen. Under any schedule that eventually
//! delivers every message — the synchronous kernel, the async round-robin
//! scheduler, seeded-random scheduling — every node decides quickly. But
//! the decision is gated on full neighborhood coverage, so a scheduling
//! adversary that starves one node of even a single incoming message keeps
//! that node undecided forever: the protocol's termination claim is exactly
//! the kind asynchrony refutes ([`crate::registry`] serves it to
//! `flm_core::refute` as the default `flp_async` target).
//!
//! The device implements [`Device::fork`], which the bivalence-seeking
//! chooser uses for one-step-forward/one-step-back look-ahead.

use flm_graph::{Graph, NodeId};
use flm_sim::device::{snapshot, Device, Input, NodeCtx, Payload};
use flm_sim::{Protocol, Tick};

/// Per-node device for [`WaitForAll`].
#[derive(Debug, Clone)]
pub struct WaitForAllDevice {
    input: bool,
    heard: Vec<bool>,
    acc: bool,
    sent: bool,
    decided: Option<bool>,
}

impl WaitForAllDevice {
    /// A fresh, un-initialized device.
    pub fn new() -> Self {
        WaitForAllDevice {
            input: false,
            heard: Vec::new(),
            acc: false,
            sent: false,
            decided: None,
        }
    }
}

impl Default for WaitForAllDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for WaitForAllDevice {
    fn name(&self) -> &'static str {
        "WaitForAll"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.input = matches!(ctx.input, Input::Bool(true));
        self.heard = vec![false; ctx.port_count()];
    }

    fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        for (p, m) in inbox.iter().enumerate() {
            if let Some(m) = m {
                if p < self.heard.len() {
                    self.heard[p] = true;
                    self.acc |= m.as_bytes().first() == Some(&1);
                }
            }
        }
        if self.decided.is_none() && !self.heard.is_empty() && self.heard.iter().all(|&h| h) {
            self.decided = Some(self.acc || self.input);
        }
        if self.sent {
            vec![None; inbox.len()]
        } else {
            self.sent = true;
            vec![Some(Payload::new(vec![u8::from(self.input)])); inbox.len()]
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut state = vec![u8::from(self.input), u8::from(self.acc)];
        for &h in &self.heard {
            state.push(u8::from(h));
        }
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// The protocol: every node runs a [`WaitForAllDevice`].
pub struct WaitForAll;

impl Protocol for WaitForAll {
    fn name(&self) -> String {
        "WaitForAll".into()
    }

    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(WaitForAllDevice::new())
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        // Broadcast at tick 0, full neighborhood heard at tick 1, one tick
        // of slack.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::async_sched::{AsyncSystem, Strategy};
    use flm_sim::system::System;
    use flm_sim::{Decision, RunPolicy};

    #[test]
    fn decides_under_the_synchronous_kernel() {
        let g = builders::complete(4);
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(v, WaitForAll.device(&g, v), Input::Bool(v == NodeId(0)));
        }
        let b = sys.run(WaitForAll.horizon(&g));
        for v in g.nodes() {
            assert_eq!(
                b.node(v).decision(),
                Some(Decision::Bool(true)),
                "{v} must decide the OR"
            );
        }
    }

    #[test]
    fn decides_under_fair_async_scheduling() {
        let g = builders::complete(4);
        let mut sys = AsyncSystem::new(g.clone());
        for v in g.nodes() {
            sys.assign(v, WaitForAll.device(&g, v), Input::Bool(false));
        }
        let run = sys.run(&Strategy::Fair, &RunPolicy::default()).unwrap();
        assert!(run.undecided().is_empty());
        assert!(run.pending.is_empty());
        for d in &run.decisions {
            assert_eq!(*d, Some(Decision::Bool(false)));
        }
    }

    #[test]
    fn hangs_under_the_starvation_adversary() {
        let g = builders::complete(4);
        let victim = NodeId(3);
        let mut sys = AsyncSystem::new(g.clone());
        for v in g.nodes() {
            sys.assign(v, WaitForAll.device(&g, v), Input::Bool(v.0 % 2 == 0));
        }
        let run = sys
            .run(
                &Strategy::Adversarial { seed: 0, victim },
                &RunPolicy::default(),
            )
            .unwrap();
        assert_eq!(run.undecided(), vec![victim]);
        assert!(
            run.pending_total() > 0,
            "withheld messages are the evidence"
        );
    }
}
