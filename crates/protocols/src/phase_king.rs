//! Phase King Byzantine agreement (Berman–Garay).
//!
//! A constant-message-size protocol tolerating `f` faults on the complete
//! graph with `n > 4f` nodes in `f + 1` two-round phases. It trades
//! resilience (`4f + 1` vs EIG's optimal `3f + 1`) for constant-size
//! messages and linear-time resolution — the natural baseline to benchmark
//! EIG against in the protocol-cost experiments.

use flm_graph::{Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::{Protocol, Tick};

/// The Phase King protocol for `f` faults. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct PhaseKing {
    f: usize,
}

impl PhaseKing {
    /// Creates the protocol for fault budget `f`.
    pub fn new(f: usize) -> Self {
        PhaseKing { f }
    }
}

impl Protocol for PhaseKing {
    fn name(&self) -> String {
        format!("PhaseKing(f={})", self.f)
    }

    /// # Panics
    ///
    /// Panics if `g` is not complete.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        let n = g.node_count();
        assert!(g.is_complete(), "Phase King requires the complete graph");
        Box::new(PhaseKingDevice::new(n, self.f, v))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        2 * (self.f as u32 + 1) + 1
    }
}

/// The per-node Phase King state machine.
#[derive(Debug, Clone)]
pub struct PhaseKingDevice {
    n: usize,
    f: usize,
    me: u32,
    value: bool,
    /// Majority value and its support count from the current phase's
    /// first round.
    maj: bool,
    cnt: usize,
    decided: Option<bool>,
}

impl PhaseKingDevice {
    /// Creates the device for node `me` of `K_n` with fault budget `f`.
    pub fn new(n: usize, f: usize, me: NodeId) -> Self {
        PhaseKingDevice {
            n,
            f,
            me: me.0,
            value: false,
            maj: false,
            cnt: 0,
            decided: None,
        }
    }
}

impl Device for PhaseKingDevice {
    fn name(&self) -> &'static str {
        "PhaseKing"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.me = ctx.node.0;
        self.value = ctx.input.as_bool().unwrap_or(false);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let tick = t.index();
        let phases = self.f + 1;
        // Tick 2k: (receive king k−1's verdict), broadcast value for phase k.
        // Tick 2k+1: receive phase-k values; king k broadcasts the majority.
        if tick.is_multiple_of(2) {
            let phase = tick / 2;
            if phase > 0 {
                // Receive the previous king's verdict (port order is sorted
                // neighbor ids; king = phase-1 as a node id).
                let king = (phase - 1) as u32;
                let king_value = if king == self.me {
                    Some(self.maj)
                } else {
                    // The king's port among sorted neighbors of me.
                    let port = (0..self.n as u32)
                        .filter(|&j| j != self.me)
                        .position(|j| j == king)
                        .expect("king is a neighbor in K_n");
                    inbox[port]
                        .as_ref()
                        .and_then(|m| m.first())
                        .map(|&b| b != 0)
                };
                if self.cnt > self.n / 2 + self.f {
                    self.value = self.maj;
                } else {
                    self.value = king_value.unwrap_or(false);
                }
                if phase == phases {
                    self.decided = Some(self.value);
                    return inbox.iter().map(|_| None).collect();
                }
            }
            // First round of phase: broadcast current value.
            return inbox
                .iter()
                .map(|_| Some(vec![u8::from(self.value)].into()))
                .collect();
        }
        // Odd tick: second round of phase `tick / 2`.
        let phase = tick / 2;
        let mut ones = usize::from(self.value);
        let mut zeros = usize::from(!self.value);
        for m in inbox.iter().flatten() {
            if m.first() == Some(&1) {
                ones += 1;
            } else {
                zeros += 1;
            }
        }
        self.maj = ones >= zeros;
        self.cnt = ones.max(zeros);
        if phase as u32 == self.me {
            // I am this phase's king: broadcast the majority.
            return inbox
                .iter()
                .map(|_| Some(vec![u8::from(self.maj)].into()))
                .collect();
        }
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        let state = [u8::from(self.value), u8::from(self.maj), self.cnt as u8];
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::{Decision, Input};

    #[test]
    fn all_honest_k5_agrees() {
        for input in [false, true] {
            let b = testkit::run_honest(&PhaseKing::new(1), &builders::complete(5), &|_| {
                Input::Bool(input)
            });
            for v in b.graph().nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)));
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_k5() {
        let b = testkit::run_honest(&PhaseKing::new(1), &builders::complete(5), &|v| {
            Input::Bool(v.0 < 2)
        });
        let first = b.node(NodeId(0)).decision();
        assert!(first.is_some());
        for v in b.graph().nodes() {
            assert_eq!(b.node(v).decision(), first);
        }
    }

    #[test]
    fn tolerates_every_zoo_adversary_k5_f1() {
        testkit::assert_byzantine_agreement(&PhaseKing::new(1), &builders::complete(5), 1, 12);
    }

    #[test]
    fn tolerates_every_zoo_adversary_k9_f2() {
        testkit::assert_byzantine_agreement(&PhaseKing::new(2), &builders::complete(9), 2, 4);
    }
}
