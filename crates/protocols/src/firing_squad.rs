//! The Byzantine firing squad via parallel agreement (§5).
//!
//! Problem: one or more nodes may receive a *stimulus* at time 0; if all
//! nodes are correct and any stimulus occurred, every node must enter the
//! FIRE state — **simultaneously** — after finite delay; with no stimulus
//! and no faults, nobody ever fires; and correct nodes always fire at the
//! same instant even with up to `f` faults.
//!
//! Upper bound (for adequate graphs): every node first announces its
//! stimulus bit, then the nodes run one Byzantine-agreement instance per
//! announcer, and fire at the fixed tick `f + 2` exactly when some instance
//! decides 1. Simultaneity is inherited from the agreement instances all
//! resolving at the same round. The §5 lower bound shows the `3f+1` /
//! `2f+1` requirements are unavoidable (with bounded delay).

use flm_graph::{Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Input, Protocol, Tick};

use crate::eig::EigDevice;

/// The firing-squad protocol for `f` faults. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct FiringSquadViaBa {
    f: usize,
}

impl FiringSquadViaBa {
    /// Creates the protocol for fault budget `f`.
    pub fn new(f: usize) -> Self {
        FiringSquadViaBa { f }
    }

    /// The fixed tick at which firing happens when it happens.
    pub fn fire_tick(&self) -> u32 {
        self.f as u32 + 2
    }
}

impl Protocol for FiringSquadViaBa {
    fn name(&self) -> String {
        format!("FiringSquadViaBA(f={})", self.f)
    }

    /// # Panics
    ///
    /// Panics if `g` is not complete.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        let n = g.node_count();
        assert!(
            g.is_complete(),
            "the firing-squad reduction requires the complete graph"
        );
        Box::new(FiringSquadDevice::new(n, self.f, v))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        self.f as u32 + 4
    }
}

/// The per-node firing-squad state machine: a stimulus-announcement phase
/// followed by `n` parallel EIG instances.
#[derive(Clone)]
pub struct FiringSquadDevice {
    n: usize,
    f: usize,
    me: u32,
    stimulus: bool,
    ports: Vec<NodeId>,
    /// One agreement instance per announcing node, created at tick 1.
    instances: Vec<EigDevice>,
    fired: bool,
}

impl FiringSquadDevice {
    /// Creates the device for node `me` of `K_n` with fault budget `f`.
    pub fn new(n: usize, f: usize, me: NodeId) -> Self {
        FiringSquadDevice {
            n,
            f,
            me: me.0,
            stimulus: false,
            ports: Vec::new(),
            instances: Vec::new(),
            fired: false,
        }
    }

    fn bundle(sections: Vec<Payload>) -> Payload {
        let mut w = Writer::new();
        for s in &sections {
            w.bytes(s);
        }
        w.finish().into()
    }

    fn unbundle(&self, payload: &[u8]) -> Vec<Option<Payload>> {
        let mut out = vec![None; self.n];
        let mut r = Reader::new(payload);
        for slot in out.iter_mut() {
            match r.bytes() {
                Ok(b) => *slot = Some(Payload::from(b)),
                Err(_) => break,
            }
        }
        out
    }
}

impl Device for FiringSquadDevice {
    fn name(&self) -> &'static str {
        "FiringSquad"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.me = ctx.node.0;
        self.stimulus = ctx.input.as_bool().unwrap_or(false);
        self.ports = ctx.ports.clone();
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        let tick = t.index();
        if tick == 0 {
            // Announce the stimulus bit.
            return inbox
                .iter()
                .map(|_| Some(vec![u8::from(self.stimulus)].into()))
                .collect();
        }
        if tick == 1 {
            // Create one EIG instance per announcer; our input to instance
            // `s` is the bit `s` announced (own stimulus for `s = me`).
            for s in 0..self.n as u32 {
                let announced = if s == self.me {
                    self.stimulus
                } else {
                    let port = self
                        .ports
                        .iter()
                        .position(|&v| v.0 == s)
                        .expect("complete graph");
                    inbox[port]
                        .as_ref()
                        .and_then(|m| m.first())
                        .map(|&b| b != 0)
                        .unwrap_or(false)
                };
                let mut inst = EigDevice::new(self.n, self.f, NodeId(self.me));
                inst.init(&NodeCtx {
                    node: NodeId(self.me),
                    ports: self.ports.clone(),
                    input: Input::Bool(announced),
                });
                self.instances.push(inst);
            }
        }
        if tick >= 1 {
            let eig_tick = Tick((tick - 1) as u32);
            // Split each port's bundle into per-instance payloads.
            let per_port: Vec<Vec<Option<Payload>>> = inbox
                .iter()
                .map(|m| match m {
                    Some(m) if tick > 1 => self.unbundle(m),
                    _ => vec![None; self.n],
                })
                .collect();
            let mut sections: Vec<Payload> = Vec::with_capacity(self.n);
            let n = self.n;
            for (k, inst) in self.instances.iter_mut().enumerate() {
                let inst_inbox: Vec<Option<Payload>> =
                    (0..inbox.len()).map(|p| per_port[p][k].clone()).collect();
                let out = inst.step(eig_tick, &inst_inbox);
                // EIG broadcasts identically on all ports; take port 0.
                sections.push(out.into_iter().next().flatten().unwrap_or_default());
                debug_assert!(k < n);
            }
            // Fire exactly when some instance decided 1, at tick f + 2.
            if tick == self.f + 2 {
                use flm_sim::Decision;
                let any = self.instances.iter().any(|inst| {
                    matches!(
                        snapshot::decision_in(&Device::snapshot(inst)),
                        Some(Decision::Bool(true))
                    )
                });
                self.fired = any;
            }
            if tick >= 1 && tick < self.f + 2 {
                let payload = Self::bundle(sections);
                return inbox.iter().map(|_| Some(payload.clone())).collect();
            }
        }
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut state = vec![u8::from(self.stimulus)];
        for inst in &self.instances {
            state.extend_from_slice(&Device::snapshot(inst));
        }
        if self.fired {
            snapshot::fire(&state)
        } else {
            snapshot::undecided(&state)
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use flm_graph::builders;
    use flm_sim::adversary::{strategy, STRATEGY_COUNT};
    use std::collections::BTreeSet;

    fn fire_ticks(b: &flm_sim::SystemBehavior, correct: &BTreeSet<NodeId>) -> Vec<Option<Tick>> {
        correct.iter().map(|&v| b.node(v).fire_tick()).collect()
    }

    #[test]
    fn stimulus_fires_everyone_simultaneously() {
        let g = builders::complete(4);
        let proto = FiringSquadViaBa::new(1);
        // Stimulus at node 2 only.
        let b = testkit::run_honest(&proto, &g, &|v| Input::Bool(v.0 == 2));
        let all: BTreeSet<NodeId> = g.nodes().collect();
        let ticks = fire_ticks(&b, &all);
        assert!(
            ticks.iter().all(|&t| t == Some(Tick(proto.fire_tick()))),
            "{ticks:?}"
        );
    }

    #[test]
    fn no_stimulus_no_fire() {
        let g = builders::complete(4);
        let b = testkit::run_honest(&FiringSquadViaBa::new(1), &g, &|_| Input::Bool(false));
        for v in g.nodes() {
            assert_eq!(b.node(v).fire_tick(), None);
        }
    }

    #[test]
    fn correct_nodes_fire_together_under_every_adversary() {
        // Agreement condition only: with a fault, firing may or may not
        // happen, but correct nodes must be simultaneous.
        let g = builders::complete(4);
        let proto = FiringSquadViaBa::new(1);
        for faulty in g.nodes() {
            let correct: BTreeSet<NodeId> = g.nodes().filter(|&v| v != faulty).collect();
            for strat in 0..STRATEGY_COUNT {
                for seed in 0..8 {
                    for stim in [None, Some(NodeId(0)), Some(NodeId(3))] {
                        let inputs = move |v: NodeId| Input::Bool(stim == Some(v));
                        let adv = strategy(strat, seed, &|| proto.device(&g, faulty));
                        let b = testkit::run_with_faults(&proto, &g, &inputs, vec![(faulty, adv)]);
                        let ticks = fire_ticks(&b, &correct);
                        assert!(
                            ticks.windows(2).all(|w| w[0] == w[1]),
                            "strategy {strat} seed {seed} stim {stim:?} faulty {faulty}: {ticks:?}"
                        );
                        // Validity half: if the stimulated node is correct,
                        // everyone fires.
                        if let Some(s) = stim {
                            if s != faulty {
                                assert!(
                                    ticks.iter().all(Option::is_some),
                                    "stimulated correct node must cause firing"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
