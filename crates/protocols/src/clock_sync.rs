//! Clock-synchronization devices (§7).
//!
//! The paper's Theorem 8 says that in inadequate graphs the *best possible*
//! synchronization is the trivial one achieved with **no communication at
//! all**: run the logical clock at the lower envelope, `C(E(t)) = l(D(t))`,
//! giving agreement `l(q(t)) − l(p(t))`. No device can improve on that by
//! any constant α > 0.
//!
//! This module provides both sides of that statement:
//!
//! * [`LowerEnvelopeSync`] — the optimal trivial device;
//! * [`AveragingSync`] — an earnest synchronizer that exchanges clock
//!   readings and slews toward its neighbors' estimates. On *adequate*
//!   graphs such averaging genuinely tightens synchronization; on
//!   inadequate graphs the Theorem 8 refuter in `flm-core` defeats any
//!   claim that it beats the trivial bound.

use flm_graph::{Graph, NodeId};
use flm_sim::clock::{ClockAction, ClockDevice, ClockEvent, TimeFn};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{ClockProtocol, Payload};

/// The optimal communication-free device: logical clock = lower envelope of
/// the hardware clock.
#[derive(Debug, Clone)]
pub struct LowerEnvelopeSync {
    l: TimeFn,
}

impl LowerEnvelopeSync {
    /// Creates the device with lower envelope `l`.
    pub fn new(l: TimeFn) -> Self {
        LowerEnvelopeSync { l }
    }
}

impl ClockDevice for LowerEnvelopeSync {
    fn name(&self) -> &'static str {
        "LowerEnvelope"
    }

    fn init(&mut self, _ports: usize) {}

    fn on_event(&mut self, _hw: f64, _event: ClockEvent) -> Vec<ClockAction> {
        Vec::new()
    }

    fn logical(&self, hw: f64) -> f64 {
        self.l.eval(hw)
    }

    fn snapshot(&self) -> Vec<u8> {
        b"lower-envelope".to_vec()
    }
}

/// A protocol assigning [`LowerEnvelopeSync`] everywhere.
#[derive(Debug, Clone)]
pub struct TrivialClockSync {
    /// The lower envelope function.
    pub l: TimeFn,
}

impl ClockProtocol for TrivialClockSync {
    fn name(&self) -> String {
        "TrivialClockSync".into()
    }

    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn ClockDevice> {
        Box::new(LowerEnvelopeSync::new(self.l.clone()))
    }
}

/// An averaging synchronizer: broadcasts its hardware reading every
/// `period` hardware units and slews its logical clock halfway toward the
/// mean of its neighbors' estimated readings.
///
/// Estimation uses the simulator's delay model (one unit of the *sender's*
/// hardware clock per hop): a received reading `r` means the sender's clock
/// showed `r` one of its units ago, so the receiver estimates it at `r + 1`.
#[derive(Debug, Clone)]
pub struct AveragingSync {
    l: TimeFn,
    period: f64,
    /// Most recent estimated neighbor readings, indexed by port.
    estimates: Vec<Option<f64>>,
    /// Hardware reading at the moment each estimate was made.
    taken_at: Vec<f64>,
    correction: f64,
}

impl AveragingSync {
    /// Creates the device with lower envelope `l`, broadcasting every
    /// `period` hardware units.
    ///
    /// # Panics
    ///
    /// Panics if `period ≤ 0`.
    pub fn new(l: TimeFn, period: f64) -> Self {
        assert!(period > 0.0, "broadcast period must be positive");
        AveragingSync {
            l,
            period,
            estimates: Vec::new(),
            taken_at: Vec::new(),
            correction: 0.0,
        }
    }

    fn recompute(&mut self, hw: f64) {
        let mut sum = 0.0;
        let mut count = 0.0;
        for (est, &at) in self.estimates.iter().zip(&self.taken_at) {
            if let Some(r) = est {
                // Advance the estimate to "now" assuming equal rates.
                sum += (r + (hw - at)) - hw;
                count += 1.0;
            }
        }
        if count > 0.0 {
            // Slew halfway toward the mean neighbor offset.
            self.correction = (sum / count) / 2.0;
        }
    }
}

impl ClockDevice for AveragingSync {
    fn name(&self) -> &'static str {
        "Averaging"
    }

    fn init(&mut self, ports: usize) {
        self.estimates = vec![None; ports];
        self.taken_at = vec![0.0; ports];
    }

    fn on_event(&mut self, hw: f64, event: ClockEvent) -> Vec<ClockAction> {
        match event {
            ClockEvent::Start | ClockEvent::Timer { .. } => {
                let mut w = Writer::new();
                w.f64(hw);
                let payload: Payload = w.finish().into();
                let mut actions: Vec<ClockAction> = (0..self.estimates.len())
                    .map(|port| ClockAction::Send {
                        port,
                        payload: payload.clone(),
                    })
                    .collect();
                actions.push(ClockAction::SetTimer {
                    id: 0,
                    hw_delay: self.period,
                });
                actions
            }
            ClockEvent::Message { port, payload } => {
                if let Ok(r) = Reader::new(&payload).f64() {
                    if r.is_finite() {
                        // One sender hardware unit elapsed in flight.
                        self.estimates[port] = Some(r + 1.0);
                        self.taken_at[port] = hw;
                        self.recompute(hw);
                    }
                }
                Vec::new()
            }
        }
    }

    fn logical(&self, hw: f64) -> f64 {
        self.l.eval(hw + self.correction)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.f64(self.correction);
        for e in &self.estimates {
            match e {
                Some(r) => {
                    w.u8(1).f64(*r);
                }
                None => {
                    w.u8(0);
                }
            }
        }
        w.finish()
    }
}

/// A protocol assigning [`AveragingSync`] everywhere.
#[derive(Debug, Clone)]
pub struct AveragingClockSync {
    /// The lower envelope function.
    pub l: TimeFn,
    /// Broadcast period in hardware units.
    pub period: f64,
}

impl ClockProtocol for AveragingClockSync {
    fn name(&self) -> String {
        format!("AveragingClockSync(period={})", self.period)
    }

    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn ClockDevice> {
        Box::new(AveragingSync::new(self.l.clone(), self.period))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::clock::ClockSystem;

    #[test]
    fn lower_envelope_tracks_l_of_hw() {
        let mut sys = ClockSystem::new(builders::triangle());
        let l = TimeFn::affine(0.5, 1.0);
        for v in sys.graph().nodes() {
            sys.assign(
                v,
                Box::new(LowerEnvelopeSync::new(l.clone())),
                TimeFn::linear(1.0 + f64::from(v.0)),
            );
        }
        let b = sys.run(4.0, &[2.0]);
        for v in b.graph().nodes() {
            let hw = (1.0 + f64::from(v.0)) * 2.0;
            assert_eq!(b.logical_at(0, v), l.eval(hw));
        }
    }

    #[test]
    fn trivial_sync_achieves_l_q_minus_l_p() {
        // Two correct clocks p(t)=t, q(t)=2t with l(t)=t: skew at time t is
        // exactly q(t) − p(t) = t.
        let mut sys = ClockSystem::new(builders::triangle());
        let proto = TrivialClockSync {
            l: TimeFn::identity(),
        };
        let g = sys.graph().clone();
        sys.assign(NodeId(0), proto.device(&g, NodeId(0)), TimeFn::identity());
        sys.assign(NodeId(1), proto.device(&g, NodeId(1)), TimeFn::linear(2.0));
        sys.assign(NodeId(2), proto.device(&g, NodeId(2)), TimeFn::identity());
        let b = sys.run(10.0, &[4.0]);
        let skew = (b.logical_at(0, NodeId(1)) - b.logical_at(0, NodeId(0))).abs();
        assert!((skew - 4.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_tightens_skew_between_honest_neighbors() {
        // With all nodes honest, averaging must do better than the trivial
        // bound between the fastest and slowest clocks.
        let run = |avg: bool| {
            let mut sys = ClockSystem::new(builders::triangle());
            for v in sys.graph().nodes() {
                let clock = TimeFn::linear(1.0 + 0.5 * f64::from(v.0)); // rates 1, 1.5, 2
                let dev: Box<dyn ClockDevice> = if avg {
                    Box::new(AveragingSync::new(TimeFn::identity(), 1.0))
                } else {
                    Box::new(LowerEnvelopeSync::new(TimeFn::identity()))
                };
                sys.assign(v, dev, clock);
            }
            let b = sys.run(12.0, &[10.0]);
            (b.logical_at(0, NodeId(2)) - b.logical_at(0, NodeId(0))).abs()
        };
        let trivial = run(false);
        let averaged = run(true);
        assert!(
            averaged < trivial,
            "averaging ({averaged}) should beat trivial ({trivial})"
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn averaging_rejects_bad_period() {
        AveragingSync::new(TimeFn::identity(), 0.0);
    }
}
