//! Cross-protocol adversarial integration sweeps: heavier-weight matrices
//! than the per-module unit tests, covering f = 2 settings and the relay
//! overlay on denser sparse graphs.

use flm_graph::{builders, connectivity, Graph, NodeId};
use flm_protocols::{testkit, Dlpsw, DolevStrong, Eig, PhaseKing, Relayed};
use flm_sim::adversary::{strategy, STRATEGY_COUNT};
use flm_sim::{Decision, Input, Protocol};
use std::collections::BTreeSet;

/// K7 minus a perfect-ish matching (3 edges): 5-connected but not complete —
/// the minimal interesting home for a relayed f = 2 protocol.
fn k7_minus_matching() -> Graph {
    let mut links = Vec::new();
    let removed = [(0u32, 1u32), (2, 3), (4, 5)];
    for u in 0..7u32 {
        for v in (u + 1)..7 {
            if !removed.contains(&(u, v)) {
                links.push((u, v));
            }
        }
    }
    builders::from_links(7, &links).expect("valid links")
}

#[test]
fn relayed_eig_f2_on_5_connected_graph() {
    let g = k7_minus_matching();
    assert_eq!(connectivity::vertex_connectivity(&g), 5);
    let proto = Relayed::new(Eig::new(2), 2);
    // Honest sanity, then a light adversarial slice (full exhaustion of
    // C(7,2)×strategies×patterns is covered at f=1 elsewhere).
    let b = testkit::run_honest(&proto, &g, &|v: NodeId| Input::Bool(v.0 < 3));
    let first = b.node(NodeId(0)).decision();
    assert!(matches!(first, Some(Decision::Bool(_))));
    for v in g.nodes() {
        assert_eq!(b.node(v).decision(), first);
    }
    for (faulty_pair, strat) in [([0u32, 3u32], 2usize), ([1, 4], 3), ([5, 6], 0)] {
        let correct: BTreeSet<NodeId> = g.nodes().filter(|v| !faulty_pair.contains(&v.0)).collect();
        let faulty = faulty_pair
            .iter()
            .map(|&v| {
                let honest = || proto.device(&g, NodeId(v));
                (NodeId(v), strategy(strat, u64::from(v), &honest))
            })
            .collect();
        let b = testkit::run_with_faults(&proto, &g, &|v: NodeId| Input::Bool(v.0 < 3), faulty);
        testkit::check_byzantine_agreement(&b, &correct)
            .unwrap_or_else(|e| panic!("faulty {faulty_pair:?} strat {strat}: {e:?}"));
    }
}

#[test]
fn protocol_matrix_on_minimal_graphs() {
    // Every (protocol, minimal adequate graph) pair against the full zoo.
    testkit::assert_byzantine_agreement(&Eig::new(1), &builders::complete(4), 1, 3);
    testkit::assert_byzantine_agreement(&PhaseKing::new(1), &builders::complete(5), 1, 3);
    testkit::assert_byzantine_agreement(&DolevStrong::new(1, 99), &builders::triangle(), 1, 3);
}

#[test]
fn dlpsw_converges_under_two_faults_on_k7() {
    let g = builders::complete(7);
    let rounds = 5;
    let proto = Dlpsw::new(2, rounds);
    let inputs = |v: NodeId| Input::Real(f64::from(v.0)); // correct spread ≤ 6
    for strat in 0..STRATEGY_COUNT {
        for (f1, f2) in [(0u32, 6u32), (2, 3)] {
            let correct: BTreeSet<NodeId> = g.nodes().filter(|v| v.0 != f1 && v.0 != f2).collect();
            let faulty = [f1, f2]
                .iter()
                .map(|&v| {
                    let honest = || proto.device(&g, NodeId(v));
                    (NodeId(v), strategy(strat, u64::from(v) * 7 + 1, &honest))
                })
                .collect();
            let b = testkit::run_with_faults(&proto, &g, &inputs, faulty);
            let ds: Vec<f64> = correct
                .iter()
                .map(|&v| match b.node(v).decision() {
                    Some(Decision::Real(r)) => r,
                    other => panic!("{v} decided {other:?}"),
                })
                .collect();
            let spread = ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                spread <= 6.0 / 2f64.powi(rounds as i32) + 1e-9,
                "strat {strat} faulty ({f1},{f2}): spread {spread}"
            );
        }
    }
}

#[test]
fn eig_decision_is_simultaneous_across_correct_nodes() {
    // All correct nodes decide at the same tick (f+1) — needed by the
    // firing-squad reduction's simultaneity.
    let g = builders::complete(4);
    let proto = Eig::new(1);
    for pattern in testkit::bool_patterns(4) {
        let b = testkit::run_honest(&proto, &g, &|v: NodeId| Input::Bool(pattern[v.index()]));
        for v in g.nodes() {
            assert_eq!(b.node(v).decision_tick(), Some(flm_sim::Tick(2)));
        }
    }
}
