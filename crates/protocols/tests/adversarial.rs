//! Cross-protocol adversarial integration sweeps: heavier-weight matrices
//! than the per-module unit tests, covering f = 2 settings and the relay
//! overlay on denser sparse graphs.

use flm_graph::{builders, connectivity, Graph, NodeId};
use flm_protocols::{testkit, Dlpsw, DolevStrong, Eig, PhaseKing, Relayed, WeakViaBa};
use flm_sim::adversary::{strategy, STRATEGY_COUNT};
use flm_sim::{Decision, Input, Protocol};
use std::collections::BTreeSet;

/// K7 minus a perfect-ish matching (3 edges): 5-connected but not complete —
/// the minimal interesting home for a relayed f = 2 protocol.
fn k7_minus_matching() -> Graph {
    let mut links = Vec::new();
    let removed = [(0u32, 1u32), (2, 3), (4, 5)];
    for u in 0..7u32 {
        for v in (u + 1)..7 {
            if !removed.contains(&(u, v)) {
                links.push((u, v));
            }
        }
    }
    builders::from_links(7, &links).expect("valid links")
}

#[test]
fn relayed_eig_f2_on_5_connected_graph() {
    let g = k7_minus_matching();
    assert_eq!(connectivity::vertex_connectivity(&g), 5);
    let proto = Relayed::new(Eig::new(2), 2);
    // Honest sanity, then a light adversarial slice (full exhaustion of
    // C(7,2)×strategies×patterns is covered at f=1 elsewhere).
    let b = testkit::run_honest(&proto, &g, &|v: NodeId| Input::Bool(v.0 < 3));
    let first = b.node(NodeId(0)).decision();
    assert!(matches!(first, Some(Decision::Bool(_))));
    for v in g.nodes() {
        assert_eq!(b.node(v).decision(), first);
    }
    for (faulty_pair, strat) in [([0u32, 3u32], 2usize), ([1, 4], 3), ([5, 6], 0)] {
        let correct: BTreeSet<NodeId> = g.nodes().filter(|v| !faulty_pair.contains(&v.0)).collect();
        let faulty = faulty_pair
            .iter()
            .map(|&v| {
                let honest = || proto.device(&g, NodeId(v));
                (NodeId(v), strategy(strat, u64::from(v), &honest))
            })
            .collect();
        let b = testkit::run_with_faults(&proto, &g, &|v: NodeId| Input::Bool(v.0 < 3), faulty);
        testkit::check_byzantine_agreement(&b, &correct)
            .unwrap_or_else(|e| panic!("faulty {faulty_pair:?} strat {strat}: {e:?}"));
    }
}

#[test]
fn protocol_matrix_on_minimal_graphs() {
    // Every (protocol, minimal adequate graph) pair against the full zoo.
    testkit::assert_byzantine_agreement(&Eig::new(1), &builders::complete(4), 1, 3);
    testkit::assert_byzantine_agreement(&PhaseKing::new(1), &builders::complete(5), 1, 3);
    testkit::assert_byzantine_agreement(&DolevStrong::new(1, 99), &builders::triangle(), 1, 3);
}

#[test]
fn dlpsw_converges_under_two_faults_on_k7() {
    let g = builders::complete(7);
    let rounds = 5;
    let proto = Dlpsw::new(2, rounds);
    let inputs = |v: NodeId| Input::Real(f64::from(v.0)); // correct spread ≤ 6
    for strat in 0..STRATEGY_COUNT {
        for (f1, f2) in [(0u32, 6u32), (2, 3)] {
            let correct: BTreeSet<NodeId> = g.nodes().filter(|v| v.0 != f1 && v.0 != f2).collect();
            let faulty = [f1, f2]
                .iter()
                .map(|&v| {
                    let honest = || proto.device(&g, NodeId(v));
                    (NodeId(v), strategy(strat, u64::from(v) * 7 + 1, &honest))
                })
                .collect();
            let b = testkit::run_with_faults(&proto, &g, &inputs, faulty);
            let ds: Vec<f64> = correct
                .iter()
                .map(|&v| match b.node(v).decision() {
                    Some(Decision::Real(r)) => r,
                    other => panic!("{v} decided {other:?}"),
                })
                .collect();
            let spread = ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                spread <= 6.0 / 2f64.powi(rounds as i32) + 1e-9,
                "strat {strat} faulty ({f1},{f2}): spread {spread}"
            );
        }
    }
}

#[test]
fn eig_decision_is_simultaneous_across_correct_nodes() {
    // All correct nodes decide at the same tick (f+1) — needed by the
    // firing-squad reduction's simultaneity.
    let g = builders::complete(4);
    let proto = Eig::new(1);
    for pattern in testkit::bool_patterns(4) {
        let b = testkit::run_honest(&proto, &g, &|v: NodeId| Input::Bool(pattern[v.index()]));
        for v in g.nodes() {
            assert_eq!(b.node(v).decision_tick(), Some(flm_sim::Tick(2)));
        }
    }
}

/// One faulty node per run: either a zoo strategy or the protocol's own
/// honest device wrapped by a [`flm_sim::FaultPlan`] injector (drop,
/// corrupt, equivocate, delay, or all four composed — optionally stacked on
/// a zoo adversary). On adequate graphs the surviving correct nodes must
/// still reach agreement and validity under every combination.
#[test]
fn fault_injector_matrix_preserves_agreement_on_adequate_graphs() {
    use flm_sim::FaultPlan;

    let cases: Vec<(Box<dyn Protocol>, Graph)> = vec![
        (Box::new(Eig::new(1)), builders::complete(4)),
        (Box::new(WeakViaBa::new(1)), builders::complete(4)),
        (Box::new(PhaseKing::new(1)), builders::complete(5)),
        (Box::new(DolevStrong::new(1, 99)), builders::triangle()),
        (
            Box::new(Relayed::new(Eig::new(1), 1)),
            builders::complete(4),
        ),
    ];
    let victim = NodeId(0);
    for (proto, g) in &cases {
        let horizon = proto.horizon(g);
        let correct: BTreeSet<NodeId> = g.nodes().filter(|&v| v != victim).collect();
        let inputs = |v: NodeId| Input::Bool(v.0.is_multiple_of(2));
        let peers: Vec<NodeId> = g.neighbors(victim).collect();

        // Every single-action plan, every all-actions composite, and the
        // composite stacked on each zoo adversary.
        let mut plans: Vec<(String, FaultPlan)> = Vec::new();
        let mut drops = FaultPlan::new(11);
        let mut corrupts = FaultPlan::new(12);
        let mut delays = FaultPlan::new(13);
        for &w in &peers {
            drops = drops.drop_edge(victim, w, 0, horizon);
            corrupts = corrupts.corrupt_edge(victim, w, 0, horizon);
            delays = delays.delay_edge(victim, w, 0, horizon, 2);
        }
        plans.push(("drop".into(), drops));
        plans.push(("corrupt".into(), corrupts));
        plans.push(("delay".into(), delays));
        plans.push((
            "equivocate".into(),
            FaultPlan::new(14).equivocate(victim, 0, horizon),
        ));
        let mut all = FaultPlan::new(15).equivocate(victim, 0, 1);
        for (i, &w) in peers.iter().enumerate() {
            all = match i % 3 {
                0 => all.drop_edge(victim, w, 1, 2),
                1 => all.corrupt_edge(victim, w, 2, horizon),
                _ => all.delay_edge(victim, w, 2, horizon, 1),
            };
        }
        plans.push(("composite".into(), all));

        // Fan the plan × strategy matrix across the worker pool: each combo
        // builds its own devices and system, so runs share nothing but the
        // protocol factory. A failing combo panics with the same message as
        // the sequential loop, and flm-par re-raises the lowest-indexed one.
        let mut combos: Vec<(String, FaultPlan, usize)> = Vec::new();
        for (label, plan) in &plans {
            assert_eq!(
                plan.faulty_nodes().into_iter().collect::<Vec<_>>(),
                vec![victim]
            );
            for strat in 0..=STRATEGY_COUNT {
                combos.push((label.clone(), plan.clone(), strat));
            }
        }
        // ~2 µs per node-tick of simulation per combo; the adaptive mapper
        // chunks the matrix (or inlines it on a one-worker pool) instead of
        // paying one dispatch per tiny run.
        let cost_hint = (g.node_count() as u64) * (u64::from(horizon) + 1) * 2_000;
        flm_par::par_map_adaptive(combos, cost_hint, |(label, plan, strat)| {
            // strat == STRATEGY_COUNT wraps the honest device; the rest
            // stack the injector on a zoo adversary.
            let inner = if strat == STRATEGY_COUNT {
                proto.device(g, victim)
            } else {
                let honest = || proto.device(g, victim);
                strategy(strat, 5 + strat as u64, &honest)
            };
            let faulty = vec![(victim, plan.wrap(victim, inner))];
            let b = testkit::run_with_faults(proto.as_ref(), g, &inputs, faulty);
            testkit::check_byzantine_agreement(&b, &correct)
                .unwrap_or_else(|e| panic!("{} plan {label} strat {strat}: {e:?}", proto.name()));
        });
    }
}
