//! A dependency-free scoped worker pool for the FLM workspace.
//!
//! The refutation engine is embarrassingly parallel — every transplanted
//! scenario in a certificate chain is an independent re-run of the protocol,
//! and the adversarial test matrices sweep independent (protocol, fault,
//! strategy) combinations. The workspace is deliberately offline (no rayon),
//! so this crate provides the minimal primitive those consumers need:
//! [`par_map`] / [`par_map_indexed`] over [`std::thread::scope`].
//!
//! # Determinism contract
//!
//! Results are returned **in input order**, regardless of which worker ran
//! which item or in what order items finished. For a pure `f`, the output of
//! `par_map(items, f)` is byte-identical to `items.into_iter().map(f)` — the
//! refuters rely on this to guarantee parallel and sequential refutations
//! produce identical certificates.
//!
//! # Panic contract
//!
//! Worker panics are caught per item and re-raised on the caller with the
//! **lowest-index** panic's payload, matching the failure the sequential
//! loop would have surfaced first (for deterministic `f`). This composes
//! with `flm-sim`'s `run_contained`: its containment state is thread-local,
//! so devices quarantined inside a worker stay quarantined there, and only
//! genuine harness failures unwind through `par_map`.
//!
//! # Tuning
//!
//! Worker count defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `FLM_PAR_THREADS` environment variable
//! (`FLM_PAR_THREADS=1` forces the inline sequential path process-wide).
//! [`sequential`] forces the inline path for the current thread only — the
//! determinism tests use it to diff parallel against sequential output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

thread_local! {
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with all [`par_map`]/[`par_map_indexed`] calls on *this thread*
/// forced onto the inline sequential path (nested calls included).
///
/// This is the reference mode for determinism tests: a refuter run under
/// `sequential` must produce byte-identical output to the same run without
/// it.
pub fn sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|c| c.set(self.0));
        }
    }
    let previous = FORCE_SEQUENTIAL.with(|c| c.replace(true));
    let _restore = Restore(previous);
    f()
}

/// True when the current thread is inside a [`sequential`] scope.
pub fn is_sequential() -> bool {
    FORCE_SEQUENTIAL.with(Cell::get)
}

/// The number of worker threads a parallel map will use.
///
/// `FLM_PAR_THREADS` (parsed once, process-wide) overrides the detected
/// [`std::thread::available_parallelism`]; values below 1 are clamped to 1,
/// and 1 means "run inline, never spawn". Without an override the rule is:
/// a host that *detects* a single core resolves to 1 (inline sequential,
/// same as `FLM_PAR_THREADS=1` — spawning a pool there only adds overhead),
/// while a host where detection *fails* falls back to 2 so the threaded
/// path's ordering/panic machinery still gets exercised.
pub fn worker_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        let override_threads = std::env::var("FLM_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        let detected = thread::available_parallelism()
            .ok()
            .map(std::num::NonZeroUsize::get);
        resolve_worker_count(override_threads, detected)
    })
}

/// Pure worker-count rule behind [`worker_count`], split out so the
/// single-core and detection-failure branches are unit-testable without
/// faking the host topology: an explicit override wins (clamped to ≥ 1), a
/// detected count is used as-is (so 1 core ⇒ inline sequential), and a
/// failed detection falls back to 2 workers.
fn resolve_worker_count(override_threads: Option<usize>, detected: Option<usize>) -> usize {
    if let Some(n) = override_threads {
        return n.max(1);
    }
    detected.unwrap_or(2)
}

/// Maps `f` over `items` on the worker pool, returning results in input
/// order. See the crate docs for the determinism and panic contracts.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the item's input index.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_indexed_with(worker_count(), items, f)
}

/// Estimated total work (item count × cost hint) below which
/// [`par_map_adaptive`] runs inline: on the recorded bench hosts the pool's
/// spawn-and-join overhead is in the hundreds of microseconds, so fanning
/// out work smaller than ~1 ms can only lose to the sequential loop.
const ADAPTIVE_INLINE_NS: u64 = 1_000_000;

/// Target per-chunk work for [`par_map_adaptive`]: items cheaper than this
/// are grouped so each cross-thread handoff moves enough work to pay for
/// itself.
const ADAPTIVE_CHUNK_NS: u64 = 250_000;

/// Maps `f` over `items` like [`par_map`], but *adaptively*: `cost_hint_ns`
/// is the caller's rough per-item cost estimate, and the call runs inline —
/// no thread spawn at all — when the pool resolves to one worker or the
/// estimated total work is below [`ADAPTIVE_INLINE_NS`]. Above the
/// threshold, cheap items are grouped into contiguous chunks of roughly
/// [`ADAPTIVE_CHUNK_NS`] each before hitting the pool.
///
/// The determinism contract is unchanged: results are input-ordered and
/// byte-identical to the sequential loop for pure `f`, whichever path is
/// taken. The panic contract is unchanged too — the lowest-index panic is
/// re-raised (chunks are contiguous and each chunk runs its items in input
/// order, so the lowest panicking index still surfaces first).
///
/// The cost hint only steers scheduling; a wrong hint can cost time, never
/// correctness.
pub fn par_map_adaptive<T, R, F>(items: Vec<T>, cost_hint_ns: u64, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    let estimated = cost_hint_ns.saturating_mul(items.len() as u64);
    if is_sequential() || workers <= 1 || estimated < ADAPTIVE_INLINE_NS {
        return items.into_iter().map(f).collect();
    }
    // Chunk size: enough items to reach the per-chunk work target, but never
    // so many that the pool is left idle.
    let by_cost = (ADAPTIVE_CHUNK_NS / cost_hint_ns.max(1)).max(1) as usize;
    let by_balance = items.len().div_ceil(workers);
    let per_chunk = by_cost.min(by_balance).max(1);
    if per_chunk == 1 {
        return par_map_indexed_with(workers, items, |_, item| f(item));
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(per_chunk));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(per_chunk).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    par_map_indexed_with(workers.min(chunks.len()), chunks, |_, chunk| {
        chunk.into_iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// [`par_map_indexed`] with an explicit pool size, so the threaded path's
/// ordering/panic contracts stay testable on hosts where [`worker_count`]
/// resolves to 1 (single detected core ⇒ inline sequential).
fn par_map_indexed_with<T, R, F>(pool: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = pool.min(items.len());
    if is_sequential() || workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let n = items.len();
    // Hand-off cells: workers claim indices with a shared cursor, take the
    // item, and park the (caught) result back in its slot, so completion
    // order never affects output order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<thread::Result<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned: claimed index was taken twice")
                    .take()
                    .expect("cursor hands each index to exactly one worker");
                let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                *results[i]
                    .lock()
                    .expect("result slot poisoned: claimed index was taken twice") = Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for (i, cell) in results.into_iter().enumerate() {
        match cell
            .into_inner()
            .expect("result slot poisoned after scope join")
        {
            Some(Ok(r)) => out.push(r),
            // Lowest-index panic wins: re-raise it on the caller, exactly as
            // the sequential loop would have (for deterministic `f`).
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("scope joins all workers, so slot {i} must be filled"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn worker_count_rule() {
        // Explicit override wins and is clamped to at least 1.
        assert_eq!(resolve_worker_count(Some(0), Some(8)), 1);
        assert_eq!(resolve_worker_count(Some(1), Some(8)), 1);
        assert_eq!(resolve_worker_count(Some(6), Some(2)), 6);
        // A detected single core resolves to the inline sequential path,
        // exactly as FLM_PAR_THREADS=1 would.
        assert_eq!(resolve_worker_count(None, Some(1)), 1);
        assert_eq!(resolve_worker_count(None, Some(4)), 4);
        // Detection *failure* (not single-core detection) falls back to 2.
        assert_eq!(resolve_worker_count(None, None), 2);
    }

    #[test]
    fn results_are_input_ordered() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        // Stagger work so completion order scrambles under real parallelism.
        let got = par_map_indexed_with(4, items, |_, x| {
            let mut acc = x;
            for _ in 0..((x * 7919) % 256) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            let _ = std::hint::black_box(acc);
            x * x
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn indexed_variant_sees_input_indices() {
        let got = par_map_indexed(vec!['a', 'b', 'c'], |i, c| format!("{i}{c}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert_eq!(par_map(empty, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_with(4, (0..64).collect::<Vec<u32>>(), |_, x| {
                if x == 13 || x == 50 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("a worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! with args carries a String payload");
        assert_eq!(msg, "boom at 13");
    }

    #[test]
    fn later_items_still_run_after_a_panic() {
        // The pool drains the whole input even when an early item panics;
        // only the re-raise is deferred to the ordered sweep.
        let ran = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_with(4, (0..32).collect::<Vec<u32>>(), |_, x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("early");
                }
                x
            })
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn sequential_scope_forces_inline_path() {
        assert!(!is_sequential());
        let (flag_inside, result) = sequential(|| {
            let r = par_map(vec![1, 2, 3], |x| x * 10);
            (is_sequential(), r)
        });
        assert!(flag_inside);
        assert!(!is_sequential());
        assert_eq!(result, vec![10, 20, 30]);
    }

    #[test]
    fn sequential_flag_restored_after_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            sequential(|| panic!("inside sequential"));
        }));
        assert!(caught.is_err());
        assert!(!is_sequential());
    }

    #[test]
    fn nested_par_map_completes() {
        let got = par_map_indexed_with(4, (0..8u32).collect::<Vec<_>>(), |_, x| {
            par_map_indexed_with(4, (0..8u32).collect::<Vec<_>>(), move |_, y| x * 8 + y)
                .into_iter()
                .sum::<u32>()
        });
        let expected: Vec<u32> = (0..8u32).map(|x| (0..8).map(|y| x * 8 + y).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pool_of_one_runs_inline_without_spawning() {
        // The pool contract: a pool that resolves to a single worker (what
        // `par_map` uses when `worker_count() == 1`) must execute every item
        // on the calling thread — no spawn, no handoff cells.
        let me = thread::current().id();
        let ids = par_map_indexed_with(1, vec![1, 2, 3], |_, _| thread::current().id());
        assert!(ids.into_iter().all(|id| id == me));
    }

    #[test]
    fn pool_of_many_actually_spawns() {
        // Converse of the contract above: with real workers and enough
        // items, at least one item runs off the calling thread.
        let me = thread::current().id();
        let ids = par_map_indexed_with(4, (0..64).collect::<Vec<u32>>(), |_, _| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            thread::current().id()
        });
        assert!(ids.into_iter().any(|id| id != me));
    }

    #[test]
    fn adaptive_small_work_runs_inline() {
        // 64 items at a 10 ns hint is far below the inline threshold: every
        // item must run on the calling thread regardless of the host pool.
        let me = thread::current().id();
        let ids = par_map_adaptive((0..64u32).collect::<Vec<_>>(), 10, |_| {
            thread::current().id()
        });
        assert!(ids.into_iter().all(|id| id == me));
    }

    #[test]
    fn adaptive_preserves_order_across_paths() {
        let expected: Vec<u64> = (0..500).map(|x: u64| x * 3 + 1).collect();
        // Sweep hints that land on the inline, chunked, and per-item paths.
        for hint in [0, 1, 10_000, 10_000_000] {
            let got = par_map_adaptive((0..500u64).collect::<Vec<_>>(), hint, |x| x * 3 + 1);
            assert_eq!(got, expected, "hint {hint}");
        }
    }

    #[test]
    fn adaptive_equals_sequential_byte_for_byte() {
        let items: Vec<u64> = (0..200).collect();
        let f = |x: u64| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15));
        let adaptive = par_map_adaptive(items.clone(), 50_000, f);
        let seq: Vec<String> = sequential(|| par_map_adaptive(items, 50_000, f));
        assert_eq!(adaptive, seq);
    }

    #[test]
    fn adaptive_lowest_index_panic_wins() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Cost hint high enough to cross the threshold and chunk.
            par_map_adaptive((0..64).collect::<Vec<u32>>(), 100_000, |x| {
                if x == 9 || x == 40 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("a worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! with args carries a String payload");
        assert_eq!(msg, "boom at 9");
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let items: Vec<u64> = (0..100).collect();
        let f = |x: u64| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15));
        let par: Vec<String> = par_map_indexed_with(4, items.clone(), |_, x| f(x));
        let seq: Vec<String> = sequential(|| par_map(items, f));
        assert_eq!(par, seq);
    }
}
