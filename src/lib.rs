//! Umbrella crate re-exporting the FLM workspace.
pub use flm_core as core;
pub use flm_graph as graph;
pub use flm_protocols as protocols;
pub use flm_sim as sim;
